"""Inter-Group RMT transformation (Section 7 of the paper).

Duplicates whole work-groups: the host doubles the NDRange's group count
along dimension 0, and redundant work-item pairs live in *different*
work-groups — hence different wavefronts — so scalar computation, the
front end, the VRF and the LDS are all replicated (Table 3).

Because OpenCL guarantees no scheduling order between work-groups, the
pass virtualizes work-group IDs through a global atomic counter: the
first work-item of each group acquires the next ticket, making the pair
(2k, 2k+1) adjacent in *dispatch order* — so a consumer's producer is
already resident, which is what prevents deadlock.

Output comparison rides a two-tiered lock in global memory: the producer
spins for its pair's communication slot, writes address+value, and
raises the slot flag; the consumer spins on the flag, reads back through
the L2 (the paper's atomic-add-of-0 trick against the write-through,
non-coherent L1s), compares, performs the store, and frees the slot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...ir.builder import KernelBuilder
from ...ir.core import (
    Alu,
    AtomicGlobal,
    BufferParam,
    Instr,
    Kernel,
    Stmt,
    StoreGlobal,
    VReg,
)
from ...ir.types import DType
from ..pass_manager import Pass
from .rmt_common import (
    INTER_COMM_ADDR,
    INTER_COMM_VAL,
    INTER_COUNTER,
    INTER_FLAG,
    RmtOptions,
    remap_special_ids,
    rewrite_stmts,
)

_BCAST_LDS = "__rmt_gid_bcast"


class InterGroupRmtPass(Pass):
    """Compiler pass implementing Inter-Group RMT."""

    name = "rmt-inter"

    def __init__(self, options: RmtOptions = RmtOptions()):
        self.options = options

    def run(self, kernel: Kernel) -> Kernel:
        opts = self.options
        kernel.metadata["rmt"] = {
            "flavor": "inter",
            "communication": opts.communication,
            "ndrange": "double_groups_dim0",
            "original_name": kernel.name,
            "extra_buffers": {
                INTER_COUNTER: "one",
                INTER_FLAG: "global_items",
                INTER_COMM_ADDR: "global_items",
                INTER_COMM_VAL: "global_items",
            },
        }
        kernel.name = kernel.name + "_rmt_inter"
        gs = kernel.metadata.get("global_size")
        if gs is not None:
            gs = (tuple(gs) + (1, 1))[:3] if not isinstance(gs, int) else (gs, 1, 1)
            kernel.metadata["global_size"] = (gs[0] * 2, gs[1], gs[2])

        counter_buf = BufferParam(INTER_COUNTER, DType.U32)
        flag_buf = BufferParam(INTER_FLAG, DType.U32)
        comm_a = BufferParam(INTER_COMM_ADDR, DType.U32)
        comm_v = BufferParam(INTER_COMM_VAL, DType.U32)
        kernel.params.extend([counter_buf, flag_buf, comm_a, comm_v])
        bcast = kernel.add_local(_BCAST_LDS, DType.U32, 1)

        original_body = kernel.body
        kernel.body = []

        # ---- prologue: work-group ID virtualization (Section 7.2) ---------
        eb = KernelBuilder.attach(kernel, kernel.body)
        lid0 = eb.local_id(0)
        lsz0 = eb.local_size(0)
        lid1 = eb.local_id(1)
        lsz1 = eb.local_size(1)
        lid2 = eb.local_id(2)
        flat_lid = eb.add(lid0, eb.mul(lsz0, eb.add(lid1, eb.mul(lsz1, lid2))))
        is_first = eb.eq(flat_lid, 0)
        with eb.if_(is_first):
            ticket = eb.atomic("add", counter_buf, 0, 1)
            eb.store_local(bcast, 0, ticket)
        eb.barrier()
        ticket = eb.load_local(bcast, 0)

        flag_u = eb.and_(ticket, 1)
        # Even tickets (dispatched first) produce; odd tickets consume —
        # a consumer's producer is therefore already resident.
        is_producer = eb.eq(flag_u, 0)
        is_consumer = eb.ne(flag_u, 0)
        vgroup = eb.shr(ticket, 1)

        ng0 = eb.shr(eb.num_groups(0), 1)     # original grid along dim 0
        ng1 = eb.num_groups(1)
        g0 = eb.rem(vgroup, ng0)
        rest = eb.div(vgroup, ng0)
        g1 = eb.rem(rest, ng1)
        g2 = eb.div(rest, ng1)

        new_gid0 = eb.add(eb.mul(g0, lsz0), lid0)
        new_gid1 = eb.add(eb.mul(g1, lsz1), lid1)
        new_gid2 = eb.add(eb.mul(g2, eb.local_size(2)), lid2)
        new_gsz0 = eb.shr(eb.global_size(0), 1)
        gsz1 = eb.global_size(1)

        id_map: Dict[Tuple[str, int], VReg] = {
            ("global_id", 0): new_gid0,
            ("global_id", 1): new_gid1,
            ("global_id", 2): new_gid2,
            ("group_id", 0): g0,
            ("group_id", 1): g1,
            ("group_id", 2): g2,
            ("num_groups", 0): ng0,
            ("global_size", 0): new_gsz0,
        }

        # Communication slot: the pair's flat original global work-item ID.
        slot = eb.add(
            new_gid0, eb.mul(new_gsz0, eb.add(new_gid1, eb.mul(gsz1, new_gid2)))
        )

        rewriter = _InterRewriter(
            kernel=kernel,
            options=opts,
            is_producer=is_producer,
            is_consumer=is_consumer,
            slot=slot,
            flag_buf=flag_buf,
            comm_a=comm_a,
            comm_v=comm_v,
        )
        body = remap_special_ids(original_body, id_map)
        body = rewrite_stmts(body, rewriter.rewrite)
        kernel.body.extend(body)
        return kernel


class _InterRewriter:
    """Per-instruction rewriting rules for the Inter-Group pass."""

    def __init__(self, kernel, options, is_producer, is_consumer, slot,
                 flag_buf, comm_a, comm_v):
        self.kernel = kernel
        self.options = options
        self.is_producer = is_producer
        self.is_consumer = is_consumer
        self.slot = slot
        self.flag_buf = flag_buf
        self.comm_a = comm_a
        self.comm_v = comm_v

    def rewrite(self, instr: Instr) -> Optional[List[Stmt]]:
        if isinstance(instr, StoreGlobal):
            return self._guarded_store(instr)
        if isinstance(instr, AtomicGlobal) and not instr.buf.name.startswith("__rmt_"):
            return self._guarded_atomic(instr)
        return None

    def _guarded_store(self, instr: StoreGlobal) -> List[Stmt]:
        out: List[Stmt] = []
        sb = KernelBuilder.attach(self.kernel, out)

        if not self.options.communication:
            with sb.if_(self.is_consumer):
                sb._emit(instr)
            return out

        idx_u = sb.as_u32(instr.index)
        val_u = sb.as_u32(instr.value)

        self._produce(sb, idx_u, val_u)

        with sb.if_(self.is_consumer):
            got_a, got_v = self._consume(sb)
            ok = sb.pand(sb.eq(got_a, idx_u), sb.eq(got_v, val_u))
            with sb.if_(sb.pnot(ok)):
                sb.report_error()
            sb._emit(instr)
            # Free the slot for this work-item's next store.
            sb.atomic("xchg", self.flag_buf, self.slot, 0, want_old=False)
        return out

    # -- handshake helpers -------------------------------------------------

    def _produce(self, sb: KernelBuilder, a_u: VReg, b_u: VReg) -> None:
        """Producer half of one exchange round (waits for a free slot)."""
        slot = self.slot
        with sb.if_(self.is_producer):
            # Tier 1: wait for the pair's slot to be free (flag == 0).
            with sb.loop() as lp:
                f = sb.atomic("add", self.flag_buf, slot, 0)
                lp.break_unless(sb.ne(f, 0))
            sb.store(self.comm_a, slot, a_u)
            sb.store(self.comm_v, slot, b_u)
            # Tier 2: publish (globally visible through the L2).
            sb.atomic("xchg", self.flag_buf, slot, 1, want_old=False)

    def _consume(self, sb: KernelBuilder):
        """Consumer half: wait for the signal, read back through the L2.

        Must be emitted under ``if_(is_consumer)``; the caller frees the
        slot (``flag := 0``) or repurposes it for a reply (``flag := 2``).
        """
        slot = self.slot
        with sb.loop() as lp:
            f = sb.atomic("add", self.flag_buf, slot, 0)
            lp.break_unless(sb.ne(f, 1))
        # Read back through the L2 (atomic add of 0) — the L1s are
        # write-through but not coherent across CUs.
        got_a = sb.atomic("add", self.comm_a, slot, 0)
        got_v = sb.atomic("add", self.comm_v, slot, 0)
        return got_a, got_v

    # -- atomics -----------------------------------------------------------

    def _guarded_atomic(self, instr: AtomicGlobal) -> List[Stmt]:
        """Execute a global atomic once per redundant group pair.

        Unrewritten, both replica groups would perform the
        read-modify-write, doubling its architectural effect.  The
        consumer compares the producer's operands, performs the atomic
        alone, and — when the old value is consumed — replies with the
        result through the same slot (flag state 2), so both replicas
        continue with identical state.
        """
        out: List[Stmt] = []
        sb = KernelBuilder.attach(self.kernel, out)
        slot = self.slot

        old_u = sb.const(0, DType.U32) if instr.dst is not None else None

        def emit_atomic(sb_inner: KernelBuilder) -> None:
            tmp = (
                None if instr.dst is None
                else self.kernel.new_reg(instr.dst.dtype, hint="old")
            )
            sb_inner._emit(AtomicGlobal(
                instr.op, tmp, instr.buf, instr.index, instr.value,
                instr.compare,
            ))
            if tmp is not None:
                sb_inner.set(old_u, sb_inner.as_u32(tmp))

        if not self.options.communication:
            with sb.if_(self.is_consumer):
                emit_atomic(sb)
        else:
            idx_u = sb.as_u32(instr.index)
            val_u = sb.as_u32(instr.value)
            rounds = [(idx_u, val_u)]
            if instr.compare is not None:
                cmp_u = sb.as_u32(instr.compare)
                rounds.append((cmp_u, cmp_u))

            oks: list = []
            for i, (a_u, b_u) in enumerate(rounds):
                self._produce(sb, a_u, b_u)
                with sb.if_(self.is_consumer):
                    got_a, got_b = self._consume(sb)
                    oks.append(sb.pand(sb.eq(got_a, a_u), sb.eq(got_b, b_u)))
                    if i < len(rounds) - 1:
                        # Intermediate round: free the slot so the
                        # producer can publish the next pair.
                        sb.atomic("xchg", self.flag_buf, slot, 0,
                                  want_old=False)

            with sb.if_(self.is_consumer):
                ok = oks[0]
                for o in oks[1:]:
                    ok = sb.pand(ok, o)
                with sb.if_(sb.pnot(ok)):
                    sb.report_error()
                emit_atomic(sb)
                if old_u is not None:
                    # Reply: old value travels consumer→producer through
                    # the slot (flag state 2); the producer frees it.
                    sb.store(self.comm_v, slot, old_u)
                    sb.atomic("xchg", self.flag_buf, slot, 2, want_old=False)
                else:
                    sb.atomic("xchg", self.flag_buf, slot, 0, want_old=False)

            if old_u is not None:
                with sb.if_(self.is_producer):
                    with sb.loop() as lp:
                        f = sb.atomic("add", self.flag_buf, slot, 0)
                        lp.break_unless(sb.ne(f, 2))
                    got = sb.atomic("add", self.comm_v, slot, 0)
                    sb.set(old_u, got)
                    sb.atomic("xchg", self.flag_buf, slot, 0, want_old=False)

        if instr.dst is not None:
            op = {
                DType.U32: "mov", DType.I32: "bitcast_i32",
                DType.F32: "bitcast_f32",
            }[instr.dst.dtype]
            sb._emit(Alu(op, instr.dst, old_u))
        return out
