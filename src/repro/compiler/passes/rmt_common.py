"""Machinery shared by the RMT transformation passes.

Both Intra-Group and Inter-Group RMT follow the same recipe (Sections
6.2 and 7.2 of the paper):

1. the host doubles the NDRange (work-items or work-groups);
2. a prologue computes remapped work-item IDs so each redundant pair
   reports identical IDs and therefore executes identical computation;
3. every ``get_*`` ID intrinsic in the body is replaced by the remapped
   value;
4. every instruction whose value exits the sphere of replication (global
   stores; local stores for Intra-Group−LDS) is wrapped in an output
   comparison: the producer communicates address and value, the consumer
   compares against its private copies, flags mismatches, and alone
   executes the store.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ...ir.core import Alu, If, Instr, Kernel, SpecialId, Stmt, VReg, While

#: Names of the hidden parameters appended by the Inter-Group pass.
INTER_COUNTER = "__rmt_counter"
INTER_FLAG = "__rmt_flag"
INTER_COMM_ADDR = "__rmt_comm_addr"
INTER_COMM_VAL = "__rmt_comm_val"

#: Names of the LDS communication buffers used by the Intra-Group pass.
INTRA_COMM_ADDR = "__rmt_comm_addr"
INTRA_COMM_VAL = "__rmt_comm_val"


@dataclass(frozen=True)
class RmtOptions:
    """Configuration of an RMT transformation.

    ``communication=False`` produces the paper's component-isolation
    variant: redundant computation runs but output comparisons are
    omitted (the consumer stores unchecked), used to split Figure 4/7
    overheads into "redundant computation" vs. "communication".
    """

    include_lds: bool = True       # Intra-Group only: LDS inside the SoR?
    communication: bool = True
    fast_comm: bool = False        # Intra-Group only: swizzle via the VRF


def rewrite_stmts(
    body: List[Stmt], fn: Callable[[Instr], Optional[List[Stmt]]]
) -> List[Stmt]:
    """Rewrite a statement tree bottom-up.

    ``fn`` maps an instruction to ``None`` (keep) or a replacement
    statement list.  Control-flow nodes are rewritten in place.
    """
    out: List[Stmt] = []
    for stmt in body:
        if isinstance(stmt, If):
            stmt.then_body = rewrite_stmts(stmt.then_body, fn)
            stmt.else_body = rewrite_stmts(stmt.else_body, fn)
            out.append(stmt)
        elif isinstance(stmt, While):
            stmt.cond_block = rewrite_stmts(stmt.cond_block, fn)
            stmt.body = rewrite_stmts(stmt.body, fn)
            out.append(stmt)
        else:
            replacement = fn(stmt)
            if replacement is None:
                out.append(stmt)
            else:
                out.extend(replacement)
    return out


def remap_special_ids(
    body: List[Stmt], mapping: Dict[Tuple[str, int], VReg]
) -> List[Stmt]:
    """Replace ID intrinsics with moves from prologue-computed registers."""

    def fn(instr: Instr) -> Optional[List[Stmt]]:
        if isinstance(instr, SpecialId):
            src = mapping.get((instr.kind, instr.dim))
            if src is not None:
                return [Alu("mov", instr.dst, src)]
        return None

    return rewrite_stmts(body, fn)


def required_local_size(kernel: Kernel) -> Tuple[int, int, int]:
    """The work-group shape a kernel was authored for.

    The Intra-Group pass sizes its LDS communication buffers from this
    (LDS allocations are compile-time constants, as in OpenCL kernels
    compiled with a fixed reqd_work_group_size).
    """
    ls = kernel.metadata.get("local_size")
    if ls is None:
        raise ValueError(
            f"kernel {kernel.name!r} has no metadata['local_size']; the "
            "Intra-Group RMT pass needs the work-group shape to size its "
            "LDS communication buffers"
        )
    if isinstance(ls, int):
        ls = (ls, 1, 1)
    ls = tuple(ls) + (1,) * (3 - len(ls))
    return ls


def flat_size(shape: Tuple[int, int, int]) -> int:
    return int(math.prod(shape))
