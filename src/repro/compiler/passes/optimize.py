"""Classic cleanup optimizations: constant folding, CSE, dead-code
elimination.

The paper's RMT transformations run inside a production OpenCL toolchain
whose later stages clean up after them; our pipeline offers the same
passes.  They matter for RMT fidelity in one concrete way the paper
calls out (Section 6.6): "RMT performance could be improved by more
efficient register allocation in the compiler" — folding and DCE shrink
the transformed kernels' register pressure, which feeds the occupancy
model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ...ir.core import (
    Alu,
    AtomicGlobal,
    Barrier,
    Cmp,
    Const,
    If,
    Instr,
    Kernel,
    LoadGlobal,
    LoadLocal,
    LoadParam,
    PredOp,
    ReportError,
    Select,
    SpecialId,
    Stmt,
    StoreGlobal,
    StoreLocal,
    Swizzle,
    VReg,
    While,
    walk_instrs,
)
from ...ir.types import DType
from ..pass_manager import Pass

#: Instructions with side effects (never eliminated).
_SIDE_EFFECTS = (StoreGlobal, StoreLocal, AtomicGlobal, Barrier, ReportError)

#: Foldable binary operators over Python ints (wrapping handled below).
_FOLD_BINARY = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 31),
    "shr": lambda a, b: (a & 0xFFFFFFFF) >> (b & 31),
    "min": min,
    "max": max,
}


class DeadCodeEliminationPass(Pass):
    """Remove instructions whose results are never observed.

    A backward liveness sweep over the structured body: side-effecting
    instructions and control-flow conditions are roots; anything else
    whose destination is dead at its program point is dropped.
    """

    name = "dce"

    def run(self, kernel: Kernel) -> Kernel:
        live: Set[int] = set()
        kernel.body = self._sweep(kernel.body, live)
        return kernel

    def _sweep(self, body: List[Stmt], live: Set[int]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in reversed(body):
            if isinstance(stmt, If):
                # Arms may redefine registers live below; process each with
                # a copy seeded from the current live set.
                then_live = set(live)
                else_live = set(live)
                stmt.then_body = self._sweep(stmt.then_body, then_live)
                stmt.else_body = self._sweep(stmt.else_body, else_live)
                live |= then_live | else_live
                live.add(id(stmt.cond))
                out.append(stmt)
            elif isinstance(stmt, While):
                # Loop bodies execute repeatedly: anything read anywhere in
                # the loop (or after it) stays live throughout.  Iterate to
                # a fixpoint of the live set.
                loop_live = set(live)
                for _ in range(4):
                    before = set(loop_live)
                    for instr in walk_instrs(stmt.cond_block):
                        loop_live.update(id(s) for s in instr.sources())
                    loop_live.add(id(stmt.cond))
                    for instr in walk_instrs(stmt.body):
                        loop_live.update(id(s) for s in instr.sources())
                    if loop_live == before:
                        break
                stmt.cond_block = self._sweep(stmt.cond_block, set(loop_live))
                stmt.body = self._sweep(stmt.body, set(loop_live))
                live |= loop_live
                out.append(stmt)
            else:
                if self._needed(stmt, live):
                    for dst in stmt.dests():
                        live.discard(id(dst))
                    live.update(id(s) for s in stmt.sources())
                    out.append(stmt)
        out.reverse()
        return out

    @staticmethod
    def _needed(instr: Instr, live: Set[int]) -> bool:
        if isinstance(instr, _SIDE_EFFECTS):
            return True
        dests = instr.dests()
        if not dests:
            return True
        return any(id(d) in live for d in dests)


class ConstantFoldingPass(Pass):
    """Fold integer arithmetic over known constants.

    Tracks ``Const`` definitions through straight-line code (invalidated
    at control-flow joins and redefinitions) and rewrites foldable ALU
    instructions into new ``Const``s.  Float folding is skipped to keep
    bit-exact parity with the unfolded kernel.
    """

    name = "constfold"

    def run(self, kernel: Kernel) -> Kernel:
        self._fold_body(kernel.body, {})
        return kernel

    def _fold_body(self, body: List[Stmt], env: Dict[int, int]) -> None:
        for i, stmt in enumerate(body):
            if isinstance(stmt, If):
                self._fold_body(stmt.then_body, dict(env))
                self._fold_body(stmt.else_body, dict(env))
                self._invalidate(stmt.then_body, env)
                self._invalidate(stmt.else_body, env)
            elif isinstance(stmt, While):
                self._invalidate(stmt.cond_block, env)
                self._invalidate(stmt.body, env)
                self._fold_body(stmt.cond_block, dict(env))
                self._fold_body(stmt.body, dict(env))
            elif isinstance(stmt, Const):
                if stmt.dst.dtype in (DType.I32, DType.U32) and isinstance(
                    stmt.value, (int, np.integer)
                ):
                    env[id(stmt.dst)] = int(stmt.value)
                else:
                    env.pop(id(stmt.dst), None)
            elif isinstance(stmt, Alu):
                folded = self._try_fold(stmt, env)
                if folded is not None:
                    body[i] = Const(stmt.dst, folded)
                    env[id(stmt.dst)] = folded
                else:
                    env.pop(id(stmt.dst), None)
            else:
                for dst in stmt.dests():
                    env.pop(id(dst), None)

    def _try_fold(self, instr: Alu, env: Dict[int, int]) -> Optional[int]:
        if instr.dst.dtype not in (DType.I32, DType.U32):
            return None
        a = env.get(id(instr.a))
        if a is None:
            return None
        if instr.b is None:
            if instr.op == "mov":
                return a
            if instr.op == "not":
                return self._wrap(~a, instr.dst.dtype)
            if instr.op == "neg":
                return self._wrap(-a, instr.dst.dtype)
            return None
        b = env.get(id(instr.b))
        if b is None:
            return None
        fn = _FOLD_BINARY.get(instr.op)
        if fn is None:
            return None
        return self._wrap(fn(a, b), instr.dst.dtype)

    @staticmethod
    def _wrap(value: int, dtype: DType) -> int:
        value &= 0xFFFFFFFF
        if dtype is DType.I32 and value >= 2**31:
            value -= 2**32
        return value

    @staticmethod
    def _invalidate(body: List[Stmt], env: Dict[int, int]) -> None:
        for instr in walk_instrs(body):
            for dst in instr.dests():
                env.pop(id(dst), None)


class CommonSubexpressionPass(Pass):
    """Local CSE over straight-line regions.

    Pure instructions (ALU/Cmp/Select/Swizzle/SpecialId/Const/LoadParam)
    with identical operator and operands are rewritten into moves from
    the first occurrence; availability resets at control flow and when an
    operand is redefined (the IR is not SSA).
    """

    name = "cse"

    def run(self, kernel: Kernel) -> Kernel:
        self._process(kernel.body)
        return kernel

    def _process(self, body: List[Stmt]) -> None:
        available: Dict[Tuple, VReg] = {}
        for i, stmt in enumerate(body):
            if isinstance(stmt, If):
                self._process(stmt.then_body)
                self._process(stmt.else_body)
                available.clear()
                continue
            if isinstance(stmt, While):
                self._process(stmt.cond_block)
                self._process(stmt.body)
                available.clear()
                continue
            key = self._key(stmt)
            added_key = None
            if key is not None:
                prior = available.get(key)
                if prior is not None and prior is not stmt.dests()[0]:
                    body[i] = Alu("mov", stmt.dests()[0], prior)
                    stmt = body[i]
                elif prior is None:
                    available[key] = stmt.dests()[0]
                    added_key = key
            # Any redefinition invalidates expressions computed from the old
            # value — including the entry just added, if the instruction
            # consumes its own destination (non-SSA accumulators).
            for dst in stmt.dests():
                did = id(dst)
                stale = [
                    k for k, v in available.items()
                    if did in k[2] or (v is dst and k is not added_key)
                ]
                for k in stale:
                    del available[k]

    @staticmethod
    def _key(instr: Instr) -> Optional[Tuple]:
        if isinstance(instr, Alu):
            srcs = tuple(id(s) for s in instr.sources())
            return ("alu", instr.op, srcs)
        if isinstance(instr, Cmp):
            return ("cmp", instr.op, tuple(id(s) for s in instr.sources()))
        if isinstance(instr, SpecialId):
            return ("sid", f"{instr.kind}:{instr.dim}", ())
        if isinstance(instr, Const):
            return ("const", repr(instr.value), ())
        if isinstance(instr, LoadParam):
            return ("param", instr.param.name, ())
        return None


def optimize(kernel: Kernel) -> Kernel:
    """Run the standard cleanup pipeline (fold → cse → dce) in place."""
    ConstantFoldingPass().run(kernel)
    CommonSubexpressionPass().run(kernel)
    DeadCodeEliminationPass().run(kernel)
    return kernel
