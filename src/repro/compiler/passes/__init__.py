"""Transformation passes: the three RMT algorithms of the paper."""

from .rmt_common import RmtOptions
from .rmt_inter import InterGroupRmtPass
from .rmt_intra import IntraGroupRmtPass

__all__ = ["InterGroupRmtPass", "IntraGroupRmtPass", "RmtOptions"]
