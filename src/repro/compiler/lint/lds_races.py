"""LDS race detector.

Flags ``StoreLocal``/``LoadLocal`` pairs that can touch the same LDS
element from different work-items with no intervening barrier.  Three
ingredients:

1. **Barrier intervals** from the dataflow framework: two accesses can
   only be interleaved by different wavefronts if some "last barrier"
   state is common to both.
2. **Symbolic index evaluation** (:mod:`.symbolic`): each access's index
   is abstracted as an affine expression over thread symbols (raw local
   IDs, the halved pair ID, the replica parity bit) and opaque uniform
   symbols, with branch/loop guards collected as linear constraints.
3. **A conflict prover** that understands the RMT invariants — replica
   halves under Intra-Group +LDS are private per parity, a redundant
   pair occupies adjacent lanes of one wavefront (lockstep, hence never
   racing), and work-groups of at most one wavefront cannot race at all.

Provable conflicts come with a concrete two-work-item witness and are
errors; indices the abstraction cannot see through (data-dependent
scatters) are reported as warnings only, so they do not fail compilation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...ir.core import (
    Alu,
    Cmp,
    Const,
    If,
    Instr,
    LoadLocal,
    LoadParam,
    LocalAlloc,
    PredOp,
    SpecialId,
    Stmt,
    StoreLocal,
    VReg,
    While,
)
from ...ir.types import DType
from ..analysis.dataflow import barrier_free_path
from .diagnostics import ERROR, WARNING, Diagnostic
from .engine import WAVEFRONT, LintContext
from .symbolic import (
    HID,
    PAR,
    RACE,
    SAFE,
    Affine,
    Constraint,
    ThreadModel,
    classify_conflict,
    lid_sym,
    negate_op,
)

_CHECKER = "lds-race"

#: Compiler-internal LDS (RMT communication/broadcast buffers) keeps this
#: prefix; it is analyzed like any other allocation — the prover's
#: lockstep-pair and pinning rules discharge it without special-casing.
_RMT_PREFIX = "__rmt_"


@dataclass
class _Access:
    instr: Instr
    alloc: LocalAlloc
    is_store: bool
    expr: Optional[Affine]
    guards: Tuple[Constraint, ...]


# ---------------------------------------------------------------------------
# Abstract evaluator
# ---------------------------------------------------------------------------

_AFFINE_INT = (DType.U32, DType.I32)


class _Evaluator:
    """Structured walk computing affine index expressions per access.

    Loops are handled by widening: registers mutated anywhere in a loop
    are replaced with fresh opaque symbols (uniform ones when the
    uniformity analysis proves them wavefront-uniform) before a final
    recording pass, so all facts hold for *every* iteration.
    """

    def __init__(self, ctx: LintContext):
        self.ctx = ctx
        self.env: Dict[int, Optional[Affine]] = {}
        self.penv: Dict[int, object] = {}
        self.regs: Dict[int, VReg] = {}
        self.nonneg: Dict[Tuple, bool] = {}
        self.accesses: List[_Access] = []
        self._opaque_counter = 0
        ls = ctx.local_size
        self.local_size = ls

    # -- symbols -----------------------------------------------------------

    def _opaque(self, reg: VReg) -> Optional[Affine]:
        """Fresh symbol for a value we cannot see through."""
        if not self.ctx.uniformity.is_uniform(reg):
            return None  # varies per work-item: unknown (TOP)
        self._opaque_counter += 1
        key = ("u", id(reg), self._opaque_counter)
        self.nonneg[key] = reg.dtype is DType.U32
        return Affine.sym(key)

    def _named_uniform(self, key: Tuple, nonneg: bool = True) -> Affine:
        self.nonneg[key] = nonneg
        return Affine.sym(key)

    # -- driver ------------------------------------------------------------

    def run(self) -> List[_Access]:
        self._eval_body(self.ctx.kernel.body, (), record=True)
        return self.accesses

    def _eval_body(
        self, body: List[Stmt], guards: Tuple[Constraint, ...], record: bool
    ) -> None:
        for stmt in body:
            if isinstance(stmt, If):
                self._eval_if(stmt, guards, record)
            elif isinstance(stmt, While):
                self._eval_while(stmt, guards, record)
            else:
                self._eval_instr(stmt, guards, record)

    def _eval_if(self, stmt: If, guards: Tuple[Constraint, ...], record: bool) -> None:
        then_g = guards + tuple(self._prims(self.penv.get(id(stmt.cond)), True))
        else_g = guards + tuple(self._prims(self.penv.get(id(stmt.cond)), False))
        pre_env = dict(self.env)
        pre_penv = dict(self.penv)
        self._eval_body(stmt.then_body, then_g, record)
        then_env, then_penv = self.env, self.penv
        self.env, self.penv = dict(pre_env), dict(pre_penv)
        self._eval_body(stmt.else_body, else_g, record)

        def aeq(x: Optional[Affine], y: Optional[Affine]) -> bool:
            return (x is None and y is None) or (
                x is not None and y is not None and x == y
            )

        # Join: keep values the arms agree on; a register assigned in only
        # one arm keeps that arm's value (its uses are themselves guarded —
        # the undef checker owns the unguarded-use case); disagreeing
        # reassignments widen to an opaque symbol.
        for rid in set(then_env) | set(self.env):
            tv = then_env.get(rid)
            ev = self.env.get(rid)
            if aeq(tv, ev):
                self.env[rid] = tv
            elif aeq(ev, pre_env.get(rid)):
                self.env[rid] = tv
            elif aeq(tv, pre_env.get(rid)):
                self.env[rid] = ev
            else:
                reg = self.regs.get(rid)
                self.env[rid] = self._opaque(reg) if reg is not None else None
        for rid in set(then_penv) | set(self.penv):
            if self.penv.get(rid) is not then_penv.get(rid):
                self.penv[rid] = None

    def _eval_while(
        self, stmt: While, guards: Tuple[Constraint, ...], record: bool
    ) -> None:
        widened: set = set()
        for _ in range(10):
            snap_env = dict(self.env)
            snap_penv = dict(self.penv)
            self._eval_body(stmt.cond_block, guards, record=False)
            body_g = guards + tuple(self._prims(self.penv.get(id(stmt.cond)), True))
            self._eval_body(stmt.body, body_g, record=False)
            changed = {
                rid
                for rid, val in self.env.items()
                if rid not in snap_env or snap_env[rid] != val
            }
            changed |= {
                rid for rid, val in self.penv.items()
                if snap_penv.get(rid) is not val
            }
            self.env, self.penv = snap_env, snap_penv
            if changed <= widened:
                break
            widened |= changed
            for rid in widened:
                reg = self.regs.get(rid)
                self.env[rid] = self._opaque(reg) if reg is not None else None
                self.penv[rid] = None
        # Final recording pass over the widened state.
        self._eval_body(stmt.cond_block, guards, record)
        body_g = guards + tuple(self._prims(self.penv.get(id(stmt.cond)), True))
        self._eval_body(stmt.body, body_g, record)
        # Post-loop state: anything loop-mutated is unknown again.
        for rid in widened:
            reg = self.regs.get(rid)
            self.env[rid] = self._opaque(reg) if reg is not None else None
            self.penv[rid] = None

    # -- instructions ------------------------------------------------------

    def _note(self, reg: VReg) -> None:
        self.regs[id(reg)] = reg

    def _eval_instr(
        self, instr: Instr, guards: Tuple[Constraint, ...], record: bool
    ) -> None:
        for r in (*instr.dests(), *instr.sources()):
            self._note(r)

        if isinstance(instr, (StoreLocal, LoadLocal)) and record:
            self.accesses.append(
                _Access(
                    instr=instr,
                    alloc=instr.lds,
                    is_store=isinstance(instr, StoreLocal),
                    expr=self.env.get(id(instr.index)),
                    guards=guards,
                )
            )

        dests = instr.dests()
        if not dests:
            return
        dst = dests[0]

        if isinstance(instr, Cmp):
            a = self.env.get(id(instr.a))
            b = self.env.get(id(instr.b))
            self.penv[id(dst)] = (
                ("cmp", instr.op, a, b) if a is not None and b is not None else None
            )
            self.env[id(dst)] = None
            return
        if isinstance(instr, PredOp):
            a = self.penv.get(id(instr.a))
            b = self.penv.get(id(instr.b)) if instr.b is not None else None
            self.penv[id(dst)] = (instr.op, a, b)
            self.env[id(dst)] = None
            return

        self.env[id(dst)] = self._eval_value(instr, dst)
        if isinstance(instr, Alu) and instr.op == "mov":
            # Predicate moves forward the predicate tree too.
            self.penv[id(dst)] = self.penv.get(id(instr.a))
        else:
            self.penv[id(dst)] = None

    def _eval_value(self, instr: Instr, dst: VReg) -> Optional[Affine]:
        if isinstance(instr, Const):
            if dst.dtype in _AFFINE_INT and isinstance(
                instr.value, (int, bool, np.integer)
            ):
                return Affine.constant(int(instr.value))
            return self._opaque(dst)
        if isinstance(instr, LoadParam):
            return self._named_uniform(
                ("param", instr.param.name), nonneg=dst.dtype is DType.U32
            )
        if isinstance(instr, SpecialId):
            return self._special(instr)
        if isinstance(instr, Alu):
            return self._alu(instr, dst)
        return self._opaque(dst)

    def _special(self, instr: SpecialId) -> Optional[Affine]:
        kind, dim = instr.kind, instr.dim
        ls = self.local_size
        if kind == "local_id":
            return Affine.sym(lid_sym(dim))
        if kind == "local_size":
            if ls is not None:
                return Affine.constant(ls[dim])
            return self._named_uniform(("sid", kind, dim))
        if kind == "global_id":
            # global_id = group_id * local_size + local_id; with a known
            # local size the group term stays exact, which is what lets
            # parity/half extraction (& 1, >> 1) see through it.
            lid = Affine.sym(lid_sym(dim))
            if ls is not None:
                grp = self._named_uniform(("sid", "group_id", dim))
                return lid.add(grp.scale(ls[dim]))
            return lid.add(self._named_uniform(("gbase", dim)))
        return self._named_uniform(("sid", kind, dim))

    def _alu(self, instr: Alu, dst: VReg) -> Optional[Affine]:
        op = instr.op
        a = self.env.get(id(instr.a))
        if op in ("mov", "bitcast_u32", "bitcast_i32"):
            if op != "mov" and instr.a.dtype not in _AFFINE_INT:
                return self._opaque(dst)
            return a if a is not None else self._opaque(dst)
        if instr.b is None:
            if op == "neg" and a is not None:
                return a.scale(-1)
            return self._opaque(dst)
        b = self.env.get(id(instr.b))
        if a is None or b is None:
            return self._opaque(dst)
        if op == "add":
            return a.add(b)
        if op == "sub":
            return a.sub(b)
        if op == "mul":
            if b.is_const():
                return a.scale(b.const)
            if a.is_const():
                return b.scale(a.const)
            if not a.thread_terms() and not b.thread_terms():
                return self._opaque(dst)
            return None
        # The engine masks shift counts with `& 31` (hardware semantics);
        # mirror that here — a raw negative count would throw in Python.
        if op == "shl" and b.is_const():
            return a.scale(1 << (b.const & 31))
        if op == "shr" and b.is_const():
            return self._shr(a, b.const & 31, dst)
        if op == "and" and (b.is_const() and b.const == 1 or a.is_const() and a.const == 1):
            other = a if (b.is_const() and b.const == 1) else b
            return self._low_bit(other, dst)
        return self._opaque(dst)

    def _shr(self, a: Affine, k: int, dst: VReg) -> Optional[Affine]:
        if a.is_const() and a.const >= 0:
            return Affine.constant(a.const >> k)
        if not a.thread_terms():
            return self._opaque(dst)
        # The pair-ID halving: (lid0 + even·uniform) >> 1 = (lid0 >> 1) +
        # half the uniform part — exact because lid0 < local_size keeps the
        # sum carry-free.
        tt = a.thread_terms()
        if k == 1 and tt == {lid_sym(0): 1}:
            rest = a.drop(lid_sym(0))
            if rest.const % 2 == 0 and all(c % 2 == 0 for c in rest.terms.values()):
                halved = Affine(
                    {s: c // 2 for s, c in rest.terms.items()}, rest.const // 2
                )
                return Affine.sym(HID).add(halved)
        return None

    def _low_bit(self, a: Affine, dst: VReg) -> Optional[Affine]:
        if a.is_const():
            return Affine.constant(a.const & 1)
        if not a.thread_terms():
            return self._opaque(dst)
        tt = a.thread_terms()
        if tt == {lid_sym(0): 1}:
            rest = a.drop(lid_sym(0))
            if rest.const % 2 == 0 and all(c % 2 == 0 for c in rest.terms.values()):
                return Affine.sym(PAR)
        return None

    # -- predicates --------------------------------------------------------

    def _prims(self, pred, polarity: bool) -> List[Constraint]:
        """Conjunctive linear facts implied by a predicate's truth value."""
        if pred is None:
            return []
        kind = pred[0]
        if kind == "cmp":
            _, op, a, b = pred
            if a is None or b is None:
                return []
            if not polarity:
                op = negate_op(op)
            return [(op, a.sub(b))]
        if kind == "and":
            _, p, q = pred
            if polarity:
                return self._prims(p, True) + self._prims(q, True)
            return []  # ¬(p ∧ q) is a disjunction: no conjunctive fact
        if kind == "or":
            _, p, q = pred
            if not polarity:
                return self._prims(p, False) + self._prims(q, False)
            return []
        if kind == "not":
            return self._prims(pred[1], not polarity)
        return []


# ---------------------------------------------------------------------------
# Checker
# ---------------------------------------------------------------------------


def _fmt_expr(expr: Optional[Affine]) -> str:
    return "<unknown>" if expr is None else repr(expr)


def check_lds_races(ctx: LintContext) -> List[Diagnostic]:
    kernel = ctx.kernel
    if not kernel.locals:
        return []
    ev = _Evaluator(ctx)
    accesses = ev.run()
    if not accesses:
        return []

    model = ThreadModel(
        local_size=ctx.local_size, wavefront=WAVEFRONT, nonneg=ev.nonneg
    )
    rmt = kernel.metadata.get("rmt") or {}
    lds_doubled = rmt.get("flavor") == "intra" and rmt.get("include_lds", False)

    by_alloc: Dict[str, List[_Access]] = {}
    for acc in accesses:
        by_alloc.setdefault(acc.alloc.name, []).append(acc)

    diags: List[Diagnostic] = []
    reported = set()
    for name, accs in by_alloc.items():
        replica_half = None
        if lds_doubled and not name.startswith(_RMT_PREFIX):
            replica_half = accs[0].alloc.nelems // 2
        for i, a in enumerate(accs):
            for b in accs[i:]:
                if not (a.is_store or b.is_store):
                    continue
                if not ctx.intervals.may_share_interval(a.instr, b.instr):
                    continue
                if not (
                    barrier_free_path(ctx.cfg, a.instr, b.instr)
                    or barrier_free_path(ctx.cfg, b.instr, a.instr)
                ):
                    # Every execution order crosses a barrier: the loop
                    # store / post-loop read pattern.
                    continue
                store, other = (a, b) if a.is_store else (b, a)
                verdict, detail = classify_conflict(
                    model,
                    store.expr,
                    store.guards,
                    other.expr,
                    other.guards,
                    replica_half=replica_half,
                )
                if verdict == SAFE:
                    continue
                key = (id(a.instr), id(b.instr))
                if key in reported:
                    continue
                reported.add(key)
                what = "store" if other.is_store else "load"
                where = (
                    f"store {name}[{_fmt_expr(store.expr)}] at "
                    f"{ctx.loc(store.instr)} vs {what} "
                    f"{name}[{_fmt_expr(other.expr)}] at {ctx.loc(other.instr)} "
                    "with no intervening barrier"
                )
                if verdict == RACE:
                    wa, wb = detail
                    diags.append(
                        ctx.diag(
                            _CHECKER,
                            ERROR,
                            store.instr,
                            f"LDS race: {where}; witness: work-items "
                            f"{wa} and {wb} collide across wavefronts",
                        )
                    )
                else:
                    diags.append(
                        ctx.diag(
                            _CHECKER,
                            WARNING,
                            store.instr,
                            f"possible LDS race: {where} ({detail})",
                        )
                    )
    return diags
