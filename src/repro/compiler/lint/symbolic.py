"""Symbolic affine index expressions for the LDS race detector.

Work-item-dependent values are abstracted as affine combinations of a
small set of *thread symbols* plus opaque *uniform symbols*:

* ``("lid", d)`` — raw local ID along dimension ``d``;
* ``("hid",)`` — the dimension-0 local ID halved (``lid0 >> 1``), the
  redundant-pair slot the Intra-Group RMT prologue computes;
* ``("par",)`` — the replica parity bit (``id & 1``), which selects the
  producer/consumer role and the private LDS half under +LDS;
* ``("u", ...)`` / ``("param", ...)`` / ``("sid", ...)`` — opaque but
  wavefront-uniform quantities (loop-carried scalars, kernel parameters,
  group IDs).  Two occurrences of the same key denote the same runtime
  value, which is what lets guard bounds like ``lid < stride`` cancel
  against address offsets like ``lid + stride``.

The prover answers one question: can a *store* by one work-item and an
access by a *different* work-item (in a different wavefront — wavefronts
execute in lockstep, so intra-wavefront accesses are ordered) touch the
same LDS element?  It proves safety by expression identity + injectivity,
by symbolic range disjointness, by replica-half separation, or by
exhaustive enumeration when everything is concrete; enumeration also
yields concrete two-thread witnesses for definite races.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Symbol keys.  Thread symbols vary per work-item; everything else is
#: uniform across the work-group.
LID = tuple("lid{}".format(d) for d in range(3))


def lid_sym(dim: int) -> Tuple:
    return ("lid", dim)


HID = ("hid",)
PAR = ("par",)

_THREAD_KINDS = ("lid", "hid", "par")


def is_thread_sym(sym: Tuple) -> bool:
    return sym[0] in _THREAD_KINDS


class Affine:
    """``const + Σ coeff·symbol`` with integer coefficients."""

    __slots__ = ("terms", "const")

    def __init__(self, terms: Optional[Dict[Tuple, int]] = None, const: int = 0):
        self.terms = {k: v for k, v in (terms or {}).items() if v != 0}
        self.const = const

    # -- constructors -------------------------------------------------------

    @classmethod
    def constant(cls, value: int) -> "Affine":
        return cls({}, value)

    @classmethod
    def sym(cls, key: Tuple, coeff: int = 1) -> "Affine":
        return cls({key: coeff}, 0)

    # -- arithmetic ----------------------------------------------------------

    def add(self, other: "Affine") -> "Affine":
        terms = dict(self.terms)
        for k, v in other.terms.items():
            terms[k] = terms.get(k, 0) + v
        return Affine(terms, self.const + other.const)

    def sub(self, other: "Affine") -> "Affine":
        return self.add(other.scale(-1))

    def scale(self, k: int) -> "Affine":
        return Affine({s: c * k for s, c in self.terms.items()}, self.const * k)

    # -- structure -----------------------------------------------------------

    def is_const(self) -> bool:
        return not self.terms

    def thread_terms(self) -> Dict[Tuple, int]:
        return {s: c for s, c in self.terms.items() if is_thread_sym(s)}

    def uniform_part(self) -> "Affine":
        return Affine(
            {s: c for s, c in self.terms.items() if not is_thread_sym(s)}, self.const
        )

    def drop(self, sym: Tuple) -> "Affine":
        terms = dict(self.terms)
        terms.pop(sym, None)
        return Affine(terms, self.const)

    def coeff(self, sym: Tuple) -> int:
        return self.terms.get(sym, 0)

    def is_zero(self) -> bool:
        return not self.terms and self.const == 0

    def key(self) -> Tuple:
        return (tuple(sorted(self.terms.items())), self.const)

    def __eq__(self, other) -> bool:
        return isinstance(other, Affine) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        bits = []
        for s, c in sorted(self.terms.items()):
            name = {("hid",): "lid0>>1", ("par",): "parity"}.get(s)
            if name is None:
                name = f"{s[0]}{s[1]}" if s[0] == "lid" else "u:" + str(s[1:] and s[1] or s[0])
            bits.append(name if c == 1 else f"{c}*{name}")
        if self.const or not bits:
            bits.append(str(self.const))
        return " + ".join(bits)


#: Guard constraint: ``diff <op> 0`` where diff is an Affine.
Constraint = Tuple[str, Affine]

_NEGATE = {"lt": "ge", "ge": "lt", "le": "gt", "gt": "le", "eq": "ne", "ne": "eq"}


def negate_op(op: str) -> str:
    return _NEGATE[op]


# ---------------------------------------------------------------------------
# The prover
# ---------------------------------------------------------------------------

SAFE = "safe"
RACE = "race"
UNKNOWN = "unknown"


@dataclass
class ThreadModel:
    """Work-group geometry the prover reasons over.

    ``local_size`` may be ``None`` when the kernel carries no
    ``metadata['local_size']``; ranges then stay unbounded and only
    identity/pinning arguments can prove safety.
    """

    local_size: Optional[Tuple[int, int, int]]
    wavefront: int = 64
    #: symbol key -> known non-negative (all ours are; kept for clarity).
    nonneg: Optional[Dict[Tuple, bool]] = None

    def range_of(self, sym: Tuple) -> Optional[int]:
        """Exclusive upper bound of a thread symbol, if known."""
        if self.local_size is None:
            return 2 if sym == PAR else None
        if sym[0] == "lid":
            return self.local_size[sym[1]]
        if sym == HID:
            return max(1, self.local_size[0] // 2)
        if sym == PAR:
            return 2
        return None

    def flat_local(self) -> Optional[int]:
        if self.local_size is None:
            return None
        n = 1
        for d in self.local_size:
            n *= d
        return n

    def sym_nonneg(self, sym: Tuple) -> bool:
        if is_thread_sym(sym):
            return True
        return (self.nonneg or {}).get(sym, False)


def proves_nonneg(model: ThreadModel, aff: Affine) -> bool:
    """Sound check that an affine combination is always >= 0."""
    if aff.const < 0:
        return False
    return all(c > 0 and model.sym_nonneg(s) for s, c in aff.terms.items())


def _injectivity(model: ThreadModel, thread_terms: Dict[Tuple, int]) -> str:
    """How much of the thread identity an expression pins down.

    Returns ``"full"`` (equal values force equal work-items),
    ``"mod_parity"`` (equal values force the same redundant pair — same
    wavefront, since pairs occupy adjacent lanes), or ``"no"``.
    """
    if not thread_terms:
        return "no"
    ranges = []
    for s, c in thread_terms.items():
        r = model.range_of(s)
        if r is None:
            return "no"
        ranges.append((abs(c), r))
    # Mixed-radix: sorted by |coeff|, each must exceed the span below it.
    ranges.sort()
    span = 0
    for c, r in ranges:
        if c <= span:
            return "no"
        span += c * (r - 1)

    # Which dimensions does the expression determine?
    covered_dims = set()
    has_hid = HID in thread_terms
    has_par = PAR in thread_terms
    ls = model.local_size or (None, None, None)
    for d in range(3):
        size = ls[d]
        if size is not None and size <= 1:
            covered_dims.add(d)      # degenerate dimension: nothing to pin
        elif lid_sym(d) in thread_terms:
            covered_dims.add(d)
    if model.local_size is None:
        # No geometry: be conservative, require the raw dim-0 ID alone.
        if set(thread_terms) == {lid_sym(0)}:
            return "full"
        if set(thread_terms) <= {HID, PAR} and has_hid:
            return "full" if has_par else "mod_parity"
        return "no"
    if covered_dims == {0, 1, 2}:
        return "full"
    if 0 not in covered_dims and has_hid:
        if covered_dims | {0} == {0, 1, 2}:
            return "full" if has_par else "mod_parity"
    return "no"


def _bound_candidates(
    model: ThreadModel, sym: Tuple, guards: Sequence[Constraint], upper: bool
) -> List[Affine]:
    """Candidate symbolic bounds for one thread symbol (inclusive)."""
    out: List[Affine] = []
    r = model.range_of(sym)
    if upper and r is not None:
        out.append(Affine.constant(r - 1))
    if not upper:
        out.append(Affine.constant(0))
    for op, diff in guards:
        tt = diff.thread_terms()
        if set(tt) != {sym}:
            continue
        c = tt[sym]
        if abs(c) != 1:
            continue
        rest = diff.drop(sym)
        if c == -1:
            # -sym + rest <op> 0
            rest = rest.scale(-1)
            op = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}.get(op, op)
        # sym + rest <op> 0  =>  sym <op> -rest
        limit = rest.scale(-1)
        if upper:
            if op == "lt":
                out.append(limit.add(Affine.constant(-1)))
            elif op in ("le", "eq"):
                out.append(limit)
        else:
            if op == "gt":
                out.append(limit.add(Affine.constant(1)))
            elif op in ("ge", "eq"):
                out.append(limit)
    return out


def _expr_bounds(
    model: ThreadModel, expr: Affine, guards: Sequence[Constraint], upper: bool
) -> List[Affine]:
    """Candidate inclusive bounds of an expression's value.

    Thread symbols are replaced by their bound candidates; uniform terms
    ride along symbolically.  Returns a (small) cross-product.
    """
    results = [expr.uniform_part()]
    for sym, c in expr.thread_terms().items():
        want_upper = upper if c > 0 else not upper
        cands = _bound_candidates(model, sym, guards, want_upper)
        if not cands:
            return []
        results = [
            base.add(cand.scale(c)) for base in results for cand in cands
        ][:16]
    return results


def ranges_disjoint(
    model: ThreadModel,
    expr_a: Affine,
    guards_a: Sequence[Constraint],
    expr_b: Affine,
    guards_b: Sequence[Constraint],
) -> bool:
    """Prove max(A) < min(B) or max(B) < min(A) symbolically."""
    for lo_expr, lo_g, hi_expr, hi_g in (
        (expr_a, guards_a, expr_b, guards_b),
        (expr_b, guards_b, expr_a, guards_a),
    ):
        his = _expr_bounds(model, lo_expr, lo_g, upper=True)
        los = _expr_bounds(model, hi_expr, hi_g, upper=False)
        for hi in his:
            for lo in los:
                # lo - hi - 1 >= 0  =>  hi < lo
                if proves_nonneg(model, lo.sub(hi).add(Affine.constant(-1))):
                    return True
    return False


def pinned_same_thread(
    guards_a: Sequence[Constraint], guards_b: Sequence[Constraint],
    model: ThreadModel,
) -> bool:
    """Both accesses are pinned to the same single work-item by equality
    guards with an identical left-hand side (e.g. ``flat_lid == 0``)."""
    def pins(guards):
        out = []
        for op, diff in guards:
            if op == "eq" and _injectivity(model, diff.thread_terms()) == "full":
                out.append(diff.key())
        return set(out)

    pa, pb = pins(guards_a), pins(guards_b)
    return bool(pa & pb)


def _pin_map(guards: Sequence[Constraint]) -> Dict[Tuple, int]:
    """Thread symbols an equality guard fixes to a concrete value."""
    pins: Dict[Tuple, int] = {}
    for op, diff in guards:
        if op != "eq":
            continue
        tt = diff.thread_terms()
        if len(tt) != 1:
            continue
        ((sym, c),) = tt.items()
        rest = diff.drop(sym)
        if rest.terms:
            continue
        # c*sym + rest.const == 0
        if (-rest.const) % c:
            continue
        pins[sym] = (-rest.const) // c
    return pins


def _subst(expr: Affine, pins: Dict[Tuple, int]) -> Affine:
    out = expr
    for sym, val in pins.items():
        c = out.coeff(sym)
        if c:
            out = out.drop(sym).add(Affine.constant(c * val))
    return out


def _resolve_lids(
    model: ThreadModel, pins: Dict[Tuple, int], parity_equal: bool
) -> Optional[Tuple]:
    """Full thread coordinate a pin set determines, if any.

    With ``parity_equal`` (both replicas' private halves, parities known
    equal) a pinned pair slot alone fixes dimension 0 up to the shared
    parity, which suffices for a same-thread argument; the slot value is
    then used in place of ``lid0``.
    """
    ls = model.local_size
    if ls is None:
        return None
    lids = []
    for d in range(3):
        if ls[d] <= 1:
            lids.append(0)
        elif lid_sym(d) in pins:
            lids.append(pins[lid_sym(d)])
        elif d == 0 and HID in pins and (PAR in pins or parity_equal):
            par = pins.get(PAR)
            lids.append(("hid", pins[HID], par))
        else:
            return None
    return tuple(lids)


def same_thread_by_index(
    model: ThreadModel,
    expr_a: Affine,
    guards_a: Sequence[Constraint],
    expr_b: Affine,
    guards_b: Sequence[Constraint],
    parity_equal: bool = False,
) -> bool:
    """Prove that index equality forces the two work-items to be the
    same one.

    Combines equality-guard pins (``lid == 0``) with the collision
    equation ``expr_a(s) == expr_b(t)`` itself: when one side reduces to
    a concrete constant under its pins, the other side's remaining
    single thread symbol is forced, and if both coordinates then resolve
    identically no *distinct* pair can collide.  This is what proves the
    classic ``if (lid == 0) out = scratch[0]`` epilogue safe against the
    tree stores ``scratch[lid]``.
    """
    base_a, base_b = _pin_map(guards_a), _pin_map(guards_b)
    ra, rb = _subst(expr_a, base_a), _subst(expr_b, base_b)
    if ra.is_const() and rb.is_const() and ra.const != rb.const:
        return True  # pinned to constant indexes that never collide
    for x, y, x_is_a in ((ra, rb, True), (rb, ra, False)):
        if not y.is_const() or x.uniform_part().terms:
            continue
        pa, pb = dict(base_a), dict(base_b)
        tt = x.thread_terms()
        if len(tt) > 1:
            continue
        if len(tt) == 1:
            ((sym, c),) = tt.items()
            num = y.const - x.const
            if num % c:
                continue
            (pa if x_is_a else pb)[sym] = num // c
        ca = _resolve_lids(model, pa, parity_equal)
        cb = _resolve_lids(model, pb, parity_equal)
        if ca is not None and ca == cb:
            return True
    return False


def parity_value(guards: Sequence[Constraint]) -> Optional[int]:
    """The replica parity a guard set pins the access to, if any."""
    for op, diff in guards:
        if set(diff.thread_terms()) == {PAR} and diff.terms.get(PAR) == 1:
            pinned = -diff.uniform_part().const
            if diff.uniform_part().terms:
                continue
            if op == "eq" and pinned in (0, 1):
                return pinned
            if op == "ne" and pinned in (0, 1):
                return 1 - pinned
    return None


def _guards_concrete(guards: Sequence[Constraint]) -> bool:
    return all(not diff.uniform_part().terms for _op, diff in guards)


def _eval_concrete(aff: Affine, lids: Tuple[int, int, int]) -> int:
    v = aff.const
    for s, c in aff.terms.items():
        if s[0] == "lid":
            v += c * lids[s[1]]
        elif s == HID:
            v += c * (lids[0] >> 1)
        elif s == PAR:
            v += c * (lids[0] & 1)
        else:  # pragma: no cover - callers filter uniform symbols first
            raise ValueError("uniform symbol in concrete evaluation")
    return v


def _check_concrete(op: str, value: int) -> bool:
    return {
        "lt": value < 0, "le": value <= 0, "gt": value > 0,
        "ge": value >= 0, "eq": value == 0, "ne": value != 0,
    }[op]


def find_witness(
    model: ThreadModel,
    expr_a: Affine,
    guards_a: Sequence[Constraint],
    expr_b: Affine,
    guards_b: Sequence[Constraint],
    limit: int = 1024,
) -> Optional[Tuple[Tuple[int, int, int], Tuple[int, int, int]]]:
    """Exhaustively search for two *different-wavefront* work-items whose
    accesses collide.  Only valid when both expressions and all guards
    are free of uniform symbols and the geometry is known and small.

    Returns ``None`` either when provably conflict-free (exhausted) or
    when the search does not apply — callers must distinguish via
    :func:`witness_applicable`.
    """
    if not witness_applicable(model, expr_a, guards_a, expr_b, guards_b, limit):
        return None
    ls = model.local_size
    threads = [
        (x, y, z)
        for z in range(ls[2]) for y in range(ls[1]) for x in range(ls[0])
    ]

    def flat(t):
        return t[0] + ls[0] * (t[1] + ls[1] * t[2])

    elems_a: Dict[int, List[Tuple[int, int, int]]] = {}
    for t in threads:
        if all(_check_concrete(op, _eval_concrete(d, t)) for op, d in guards_a):
            elems_a.setdefault(_eval_concrete(expr_a, t), []).append(t)
    for t in threads:
        if not all(_check_concrete(op, _eval_concrete(d, t)) for op, d in guards_b):
            continue
        for other in elems_a.get(_eval_concrete(expr_b, t), ()):
            if flat(other) // model.wavefront != flat(t) // model.wavefront:
                return other, t
    return None


def witness_applicable(
    model: ThreadModel,
    expr_a: Affine,
    guards_a: Sequence[Constraint],
    expr_b: Affine,
    guards_b: Sequence[Constraint],
    limit: int = 1024,
) -> bool:
    flat = model.flat_local()
    if flat is None or flat > limit or flat <= model.wavefront:
        return False
    return (
        not expr_a.uniform_part().terms
        and not expr_b.uniform_part().terms
        and _guards_concrete(guards_a)
        and _guards_concrete(guards_b)
    )


def classify_conflict(
    model: ThreadModel,
    store_expr: Affine,
    store_guards: Sequence[Constraint],
    other_expr: Affine,
    other_guards: Sequence[Constraint],
    replica_half: Optional[int] = None,
):
    """Decide whether a store/access pair can collide across wavefronts.

    ``replica_half`` is the element count of one replica half when the
    +LDS transformation doubled this allocation (``nelems // 2``), which
    enables the private-half separation argument.

    Returns ``(verdict, detail)`` with verdict one of SAFE / RACE /
    UNKNOWN; RACE carries a concrete witness pair in ``detail``.
    """
    if store_expr is None or other_expr is None:
        return UNKNOWN, "index not statically analyzable"

    flat = model.flat_local()
    if flat is not None and flat <= model.wavefront:
        return SAFE, "work-group fits in one wavefront (lockstep)"

    ea, eb = store_expr, other_expr
    parity_forced_equal = False
    half_a, half_b = ea.coeff(PAR), eb.coeff(PAR)
    if replica_half and half_a == half_b == replica_half:
        # Both replicas index private halves: cross-parity accesses are
        # separated by construction; only same-parity pairs remain.
        ea, eb = ea.drop(PAR), eb.drop(PAR)
        parity_forced_equal = True

    pa, pb = parity_value(store_guards), parity_value(other_guards)
    if parity_forced_equal and pa is not None and pb is not None and pa != pb:
        return SAFE, "replica halves private and parities differ"

    if pinned_same_thread(store_guards, other_guards, model):
        return SAFE, "both accesses pinned to the same single work-item"

    if same_thread_by_index(
        model, ea, store_guards, eb, other_guards,
        parity_equal=parity_forced_equal,
    ):
        return SAFE, "colliding work-items are provably the same work-item"

    diff = eb.sub(ea)
    if not diff.thread_terms():
        if diff.is_zero():
            inj = _injectivity(model, ea.thread_terms())
            if inj == "full":
                return SAFE, "identical index expression, one element per work-item"
            if inj == "mod_parity" or (parity_forced_equal and inj != "no"):
                return SAFE, (
                    "identical index expression; colliding work-items form a "
                    "redundant pair in one wavefront"
                )
        if ranges_disjoint(model, ea, store_guards, eb, other_guards):
            return SAFE, "index ranges provably disjoint"
    else:
        if ranges_disjoint(model, ea, store_guards, eb, other_guards):
            return SAFE, "index ranges provably disjoint"

    if witness_applicable(model, ea, store_guards, eb, other_guards):
        w = find_witness(model, ea, store_guards, eb, other_guards)
        if w is None:
            return SAFE, "exhaustive enumeration found no cross-wavefront collision"
        return RACE, w
    return UNKNOWN, "cannot prove work-items access distinct elements"
