"""Dominance-based undefined-register-use checker.

Replaces the program-order heuristic in :mod:`repro.ir.verify` — which
treats a write in *either* arm of an ``If`` as defining — with the
definite-assignment (forward *must*) analysis over the CFG: a read is
flagged unless a definition reaches it on **every** incoming path,
including the zero-trip path around a ``While``.

One deliberate concession to the non-SSA IR's C-like idiom: a value
defined under ``if (p)`` and read under a *later* ``if (p)`` with the
same (single-assignment) predicate register is dynamically fine — the
guard correlates — so such violations are suppressed.  The DWT kernel's
per-level active-lane pattern relies on this.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...ir.core import If, Instr, Stmt, VReg, While, walk_instrs
from ..analysis.dataflow import definite_assignment
from .diagnostics import ERROR, Diagnostic
from .engine import LintContext

_CHECKER = "undef"

#: Guard-stack element: (id(cond reg), tag) where tag distinguishes
#: then/else arms and loop bodies.
_Guard = Tuple[int, str]


def check_undefined_uses(ctx: LintContext) -> List[Diagnostic]:
    da = definite_assignment(ctx.cfg)
    if not da.violations and not da.cond_violations:
        return []

    order: Dict[int, int] = {}
    guards: Dict[int, Tuple[_Guard, ...]] = {}
    defs_by_reg: Dict[int, List[Tuple[int, Tuple[_Guard, ...]]]] = {}
    def_counts: Dict[int, int] = {}
    _index_body(ctx.kernel.body, (), order, guards, defs_by_reg)
    for instr in walk_instrs(ctx.kernel.body):
        for dst in instr.dests():
            def_counts[id(dst)] = def_counts.get(id(dst), 0) + 1

    diags: List[Diagnostic] = []
    seen = set()
    for instr, reg, loc in da.violations:
        if _suppressed(instr, reg, order, guards, defs_by_reg, def_counts):
            continue
        key = (id(instr), id(reg))
        if key in seen:
            continue
        seen.add(key)
        diags.append(
            ctx.diag(
                _CHECKER,
                ERROR,
                str(loc),
                f"{instr!r} reads {reg!r}, which is not definitely "
                "assigned on every path to this use",
            )
        )
    for _bid, reg, loc in da.cond_violations:
        key = ("cond", id(reg), str(loc))
        if key in seen:
            continue
        seen.add(key)
        diags.append(
            ctx.diag(
                _CHECKER,
                ERROR,
                str(loc),
                f"branch condition reads {reg!r}, which is not definitely "
                "assigned on every path to this use",
            )
        )
    return diags


def _index_body(
    body: List[Stmt],
    stack: Tuple[_Guard, ...],
    order: Dict[int, int],
    guards: Dict[int, Tuple[_Guard, ...]],
    defs_by_reg: Dict[int, List[Tuple[int, Tuple[_Guard, ...]]]],
) -> None:
    for stmt in body:
        if isinstance(stmt, If):
            _index_body(stmt.then_body, stack + ((id(stmt.cond), "then"),),
                        order, guards, defs_by_reg)
            _index_body(stmt.else_body, stack + ((id(stmt.cond), "else"),),
                        order, guards, defs_by_reg)
        elif isinstance(stmt, While):
            _index_body(stmt.cond_block, stack + ((id(stmt.cond), "loop"),),
                        order, guards, defs_by_reg)
            _index_body(stmt.body, stack + ((id(stmt.cond), "loop"),),
                        order, guards, defs_by_reg)
        else:
            seq = len(order)
            order[id(stmt)] = seq
            guards[id(stmt)] = stack
            for dst in stmt.dests():
                defs_by_reg.setdefault(id(dst), []).append((seq, stack))


def _suppressed(
    use: Instr,
    reg: VReg,
    order: Dict[int, int],
    guards: Dict[int, Tuple[_Guard, ...]],
    defs_by_reg: Dict[int, List[Tuple[int, Tuple[_Guard, ...]]]],
    def_counts: Dict[int, int],
) -> bool:
    """Guard-correlated conditional definition preceding the use."""
    use_seq = order.get(id(use))
    if use_seq is None:
        return False
    use_guards = set(guards.get(id(use), ()))
    for def_seq, def_guards in defs_by_reg.get(id(reg), ()):
        if def_seq >= use_seq:
            continue
        if not set(def_guards) <= use_guards:
            continue
        # The correlation is only meaningful if every guarding predicate
        # still holds the value it had at the definition: require each
        # cond register to be single-assignment.
        if all(def_counts.get(cid, 0) == 1 for cid, _tag in def_guards):
            return True
    return False
