"""Barrier-divergence checker.

GCN's ``s_barrier`` waits for every *wavefront* of the work-group, so a
barrier is only safe when every wavefront reaches it the same number of
times.  A barrier nested under control flow whose condition is not
wavefront-uniform can be skipped (or repeated) by some wavefronts —
which deadlocks real hardware.  Work-groups that fit in a single
wavefront are exempt: a lone wavefront always agrees with itself, and
executing the barrier with some lanes inactive is harmless.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...ir.core import Barrier, If, Stmt, VReg, While
from .diagnostics import ERROR, Diagnostic
from .engine import WAVEFRONT, LintContext

_CHECKER = "barrier-divergence"


def check_barrier_divergence(ctx: LintContext) -> List[Diagnostic]:
    flat = ctx.flat_local_size
    if flat is not None and flat <= WAVEFRONT:
        return []
    diags: List[Diagnostic] = []
    _walk(ctx, ctx.kernel.body, None, diags)
    return diags


def _walk(
    ctx: LintContext,
    body: List[Stmt],
    divergent_cond: Optional[Tuple[str, VReg]],
    diags: List[Diagnostic],
) -> None:
    uni = ctx.uniformity
    for stmt in body:
        if isinstance(stmt, If):
            inner = divergent_cond
            if inner is None and not uni.is_uniform(stmt.cond):
                inner = ("if", stmt.cond)
            _walk(ctx, stmt.then_body, inner, diags)
            _walk(ctx, stmt.else_body, inner, diags)
        elif isinstance(stmt, While):
            _walk(ctx, stmt.cond_block, divergent_cond, diags)
            inner = divergent_cond
            if inner is None and not uni.is_uniform(stmt.cond):
                inner = ("while", stmt.cond)
            _walk(ctx, stmt.body, inner, diags)
        elif isinstance(stmt, Barrier) and divergent_cond is not None:
            kind, cond = divergent_cond
            diags.append(
                ctx.diag(
                    _CHECKER,
                    ERROR,
                    stmt,
                    f"barrier under divergent {kind} condition {cond!r}: "
                    "wavefronts may disagree on reaching it, deadlocking "
                    "the work-group",
                )
            )
