"""Static lint suite over the kernel IR.

Four checkers built on :mod:`repro.compiler.analysis.dataflow`:

- ``barrier-divergence`` — barriers under non-wavefront-uniform control
  flow (hardware deadlock);
- ``lds-race`` — conflicting LDS accesses by distinct work-items with
  no intervening barrier, proved via a symbolic affine index domain;
- ``undef`` — dominance-based definite-assignment check on register
  reads;
- ``sor-coverage`` — RMT sphere-of-replication contract: every primary
  store is consumer-predicated, output-compared across a communication
  channel, and (+LDS) replica-remapped.

Entry points: :func:`run_lints` (collect diagnostics),
:func:`check_kernel` (raise :class:`LintError` on errors — wired into
the pass manager as post-pass verification).
"""

from .diagnostics import ERROR, WARNING, Diagnostic, LintError
from .engine import LintContext, check_kernel, checker_names, run_lints

__all__ = [
    "Diagnostic",
    "LintError",
    "LintContext",
    "ERROR",
    "WARNING",
    "check_kernel",
    "checker_names",
    "run_lints",
]
