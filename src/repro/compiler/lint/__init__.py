"""Static lint suite over the kernel IR.

Six checkers built on :mod:`repro.compiler.analysis.dataflow` and
:mod:`repro.compiler.analysis.ranges`:

- ``barrier-divergence`` — barriers under non-wavefront-uniform control
  flow (hardware deadlock);
- ``lds-race`` — conflicting LDS accesses by distinct work-items with
  no intervening barrier, proved via a symbolic affine index domain;
- ``undef`` — dominance-based definite-assignment check on register
  reads;
- ``sor-coverage`` — RMT sphere-of-replication contract: every primary
  store is consumer-predicated, output-compared across a communication
  channel, and (+LDS) replica-remapped;
- ``oob`` — interval-analysis bounds check of LDS and global accesses
  against statically-known allocation sizes;
- ``vuln`` — partial sphere-of-replication contract validation: a
  kernel declaring ``metadata["rmt"]["partial"]`` must partition its
  actual SoR exits into the protected/unprotected sets it claims.

Entry points: :func:`run_lints` (collect diagnostics, deterministically
ordered), :func:`check_kernel` (raise :class:`LintError` on errors —
wired into the pass manager as post-pass verification).
"""

from .diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    LintError,
    normalize_diagnostics,
)
from .engine import LintContext, check_kernel, checker_names, run_lints

__all__ = [
    "Diagnostic",
    "LintError",
    "LintContext",
    "ERROR",
    "WARNING",
    "check_kernel",
    "checker_names",
    "normalize_diagnostics",
    "run_lints",
]
