"""Diagnostic records and the lint failure exception."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ...ir.verify import VerificationError

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, pinned to a kernel and a structured-IR location."""

    checker: str
    severity: str        # ERROR or WARNING
    kernel: str
    loc: str             # rendered Loc path, e.g. "body[4].then[1]"
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: [{self.checker}] {self.kernel} @ {self.loc}: {self.message}"

    def to_json(self) -> Dict[str, str]:
        """Machine-readable form (shared by repro.lint and repro.tv)."""
        return {
            "checker": self.checker,
            "severity": self.severity,
            "kernel": self.kernel,
            "loc": self.loc,
            "message": self.message,
        }


def normalize_diagnostics(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """Deterministic diagnostic order: sort by (checker, loc, message) and
    drop exact duplicates (checkers walking both an access and its alias
    can report the same finding twice)."""
    seen = set()
    out: List[Diagnostic] = []
    for d in sorted(diagnostics, key=lambda d: (d.checker, d.loc, d.message)):
        key = (d.checker, d.severity, d.kernel, d.loc, d.message)
        if key not in seen:
            seen.add(key)
            out.append(d)
    return out


class LintError(VerificationError):
    """A kernel failed the post-pass lint stage.

    Subclasses :class:`VerificationError` so existing callers that treat
    verification failures as compile failures handle lint rejections the
    same way.  The full diagnostic list is on ``.diagnostics``.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        errors = [d for d in self.diagnostics if d.severity == ERROR]
        kernel = errors[0].kernel if errors else "<unknown>"
        shown = "; ".join(str(d) for d in errors[:5])
        extra = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
        super().__init__(
            f"kernel {kernel!r}: {len(errors)} lint error(s): {shown}{extra}",
            errors=[str(d) for d in errors],
        )
