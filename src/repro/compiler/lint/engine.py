"""Lint driver: shared per-kernel analysis context and checker dispatch."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...ir.core import Kernel
from ..analysis.dataflow import (
    CFG,
    BarrierIntervals,
    ReachingDefs,
    barrier_intervals,
    build_cfg,
    reaching_definitions,
)
from ..analysis.ranges import RangeAnalysis, analyze_ranges
from ..analysis.uniformity import UniformityInfo, analyze_uniformity
from .diagnostics import ERROR, Diagnostic, LintError, normalize_diagnostics

#: One wavefront = 64 lanes on GCN; accesses inside a wavefront are
#: lockstep-ordered, which several checkers exploit.
WAVEFRONT = 64


class LintContext:
    """Lazily-computed analyses shared by all checkers for one kernel."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._cfg: Optional[CFG] = None
        self._uniformity: Optional[UniformityInfo] = None
        self._intervals: Optional[BarrierIntervals] = None
        self._rdefs: Optional[ReachingDefs] = None
        self._ranges: Optional[RangeAnalysis] = None

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.kernel)
        return self._cfg

    @property
    def uniformity(self) -> UniformityInfo:
        if self._uniformity is None:
            self._uniformity = analyze_uniformity(self.kernel)
        return self._uniformity

    @property
    def intervals(self) -> BarrierIntervals:
        if self._intervals is None:
            self._intervals = barrier_intervals(self.cfg)
        return self._intervals

    @property
    def reaching_defs(self) -> ReachingDefs:
        if self._rdefs is None:
            self._rdefs = reaching_definitions(self.cfg)
        return self._rdefs

    @property
    def ranges(self) -> RangeAnalysis:
        if self._ranges is None:
            self._ranges = analyze_ranges(self.kernel)
        return self._ranges

    @property
    def local_size(self) -> Optional[Tuple[int, int, int]]:
        """Normalized work-group shape, or None if the kernel has none."""
        ls = self.kernel.metadata.get("local_size")
        if ls is None:
            return None
        if isinstance(ls, int):
            ls = (ls, 1, 1)
        ls = tuple(int(x) for x in ls) + (1,) * (3 - len(ls))
        return ls[:3]

    @property
    def flat_local_size(self) -> Optional[int]:
        ls = self.local_size
        if ls is None:
            return None
        return ls[0] * ls[1] * ls[2]

    def loc(self, instr) -> str:
        """Render an instruction's structured-IR path."""
        loc = self.cfg.locs.get(id(instr))
        return str(loc) if loc is not None else "<unknown>"

    def diag(self, checker: str, severity: str, instr_or_loc, message: str) -> Diagnostic:
        loc = (
            instr_or_loc
            if isinstance(instr_or_loc, str)
            else self.loc(instr_or_loc)
        )
        return Diagnostic(checker, severity, self.kernel.name, loc, message)


Checker = Callable[[LintContext], List[Diagnostic]]


def _registry() -> Dict[str, Checker]:
    from .barrier_divergence import check_barrier_divergence
    from .lds_races import check_lds_races
    from .oob import check_oob
    from .sor_coverage import check_sor_coverage
    from .undef import check_undefined_uses
    from .vuln import check_vuln

    return {
        "barrier-divergence": check_barrier_divergence,
        "lds-race": check_lds_races,
        "undef": check_undefined_uses,
        "sor-coverage": check_sor_coverage,
        "oob": check_oob,
        "vuln": check_vuln,
    }


def checker_names() -> List[str]:
    return list(_registry().keys())


def run_lints(
    kernel: Kernel, checkers: Optional[Sequence[str]] = None
) -> List[Diagnostic]:
    """Run the requested checkers (default: all) over one kernel."""
    registry = _registry()
    names = list(checkers) if checkers is not None else list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise KeyError(f"unknown lint checker(s) {unknown}; have {sorted(registry)}")
    ctx = LintContext(kernel)
    out: List[Diagnostic] = []
    for name in names:
        out.extend(registry[name](ctx))
    return normalize_diagnostics(out)


def check_kernel(
    kernel: Kernel, checkers: Optional[Sequence[str]] = None
) -> List[Diagnostic]:
    """Run the lint suite and raise :class:`LintError` on any error.

    Returns the full diagnostic list (warnings included) when clean.
    """
    diagnostics = run_lints(kernel, checkers)
    if any(d.severity == ERROR for d in diagnostics):
        raise LintError(diagnostics)
    return diagnostics
