"""Static out-of-bounds checker backed by the value-range interpreter.

For every global/LDS access whose allocation size is statically known
(LDS allocations always; global buffers when the kernel carries
``metadata['buffer_nelems']``), compare the interval of the index against
``[0, nelems)``:

* **error** — the access is *provably* out of bounds every time it
  executes (the whole interval lies outside the allocation);
* **warning** — the index is bounded on both sides but the interval
  crosses the allocation boundary, so some abstract execution is out of
  bounds;
* silent — the interval is unbounded on a side.  An unbounded index is
  almost always a scalar-parameter-dependent address (``i*n + k``) that
  the host launches in bounds; warning on every one of those would bury
  real findings, so the checker only speaks when it can bound the index.
"""

from __future__ import annotations

from typing import List

from .diagnostics import ERROR, WARNING, Diagnostic
from .engine import LintContext


def check_oob(ctx: LintContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for acc in ctx.ranges.accesses:
        n = acc.nelems
        if n is None:
            continue
        iv = acc.index
        definitely_oob = (
            (iv.lo is not None and iv.lo >= n)
            or (iv.hi is not None and iv.hi < 0)
        )
        if definitely_oob:
            out.append(ctx.diag(
                "oob", ERROR, acc.instr,
                f"{acc.kind} {acc.target}[{iv}] is out of bounds "
                f"for allocation of {n} element(s)",
            ))
        elif iv.is_bounded and (iv.lo < 0 or iv.hi >= n):
            out.append(ctx.diag(
                "oob", WARNING, acc.instr,
                f"{acc.kind} {acc.target}[{iv}] may leave the "
                f"allocation of {n} element(s)",
            ))
    return out
