"""RMT sphere-of-replication coverage verifier.

Walks a *transformed* kernel (one carrying ``metadata['rmt']``) and
proves the structural contract of Tables 2/3: every store whose value
exits the sphere of replication is

1. predicated on the consumer-duplicate parity test of its flavor
   (Intra-Group: ``(id & 1) == 0``; Inter-Group: ``(ticket & 1) != 0``);
2. (when output comparison is enabled) preceded, under that predicate,
   by an ``if (!(got_a == addr && got_v == value)) report_error`` block
   whose ``got_*`` operands crossed a communication channel — an LDS
   communication buffer, a register swizzle, or an L2 atomic readback —
   while ``addr``/``value`` are the consumer's private copies.

Under Intra-Group +LDS, LDS stays inside the SoR instead: every LDS
access must then be remapped into a per-replica half, i.e. its index
must include a ``parity * original_nelems`` term.

A pass bug that drops a comparison or skips a remap therefore fails
compilation here instead of silently weakening fault coverage.  The
matching is chain-based (following ``mov``/``bitcast``), so it survives
the constant-folding/CSE/DCE cleanup pipeline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ...ir.core import (
    Alu,
    AtomicGlobal,
    Cmp,
    Const,
    If,
    Instr,
    Kernel,
    LoadLocal,
    PredOp,
    ReportError,
    Stmt,
    StoreGlobal,
    StoreLocal,
    Swizzle,
    VReg,
    While,
    walk_instrs,
    walk_stmts,
)
from .diagnostics import ERROR, Diagnostic
from .engine import LintContext

_CHECKER = "sor-coverage"
_RMT_PREFIX = "__rmt_"

#: Chain-following steps: single-def copies and reinterpretations.
_COPY_OPS = frozenset({"mov", "bitcast_u32", "bitcast_i32", "bitcast_f32"})


class _Defs:
    """Definition map over the whole kernel (non-SSA aware)."""

    def __init__(self, kernel: Kernel):
        self.by_reg: dict = {}
        for instr in walk_instrs(kernel.body):
            for dst in instr.dests():
                self.by_reg.setdefault(id(dst), []).append(instr)

    def single(self, reg: VReg) -> Optional[Instr]:
        defs = self.by_reg.get(id(reg), [])
        return defs[0] if len(defs) == 1 else None

    def resolve(self, reg: VReg) -> Tuple[VReg, bool]:
        """Follow copy chains; return (root register, crossed_channel).

        ``crossed_channel`` is True when the chain passes through an RMT
        communication read: an LDS load from a ``__rmt_`` buffer, a
        swizzle, or a global atomic on a ``__rmt_`` buffer.
        """
        cur = reg
        for _ in range(64):  # chains are short; bound defends against cycles
            d = self.single(cur)
            if d is None:
                return cur, False
            if isinstance(d, LoadLocal) and d.lds.name.startswith(_RMT_PREFIX):
                return cur, True
            if isinstance(d, Swizzle):
                return cur, True
            if isinstance(d, AtomicGlobal) and d.buf.name.startswith(_RMT_PREFIX):
                return cur, True
            if isinstance(d, Alu) and d.op in _COPY_OPS:
                cur = d.a
                continue
            return cur, False
        return cur, False

    def const_value(self, reg: VReg) -> Optional[int]:
        root, _ = self.resolve(reg)
        d = self.single(root)
        if isinstance(d, Const) and isinstance(d.value, (int, bool)):
            return int(d.value)
        return None

    def is_parity_of_id(self, reg: VReg) -> bool:
        """Is ``reg`` (through copies) an ``x & 1`` low-bit extraction?"""
        root, _ = self.resolve(reg)
        d = self.single(root)
        if not isinstance(d, Alu) or d.op != "and" or d.b is None:
            return False
        return self.const_value(d.a) == 1 or self.const_value(d.b) == 1


def check_sor_coverage(ctx: LintContext) -> List[Diagnostic]:
    meta = ctx.kernel.metadata.get("rmt")
    if not meta:
        return []
    flavor = meta.get("flavor")
    communication = bool(meta.get("communication", True))
    include_lds = bool(meta.get("include_lds", False))
    # Declared partial sphere of replication (selective RMT): exits whose
    # ordinal — in the same DFS collection order used here — is declared
    # unprotected keep the consumer-parity guard requirement (exactly one
    # replica may store) but drop the output-comparison requirement.
    partial = meta.get("partial") or None
    unprotected = set(partial.get("unprotected", ())) if partial else set()

    defs = _Defs(ctx.kernel)
    diags: List[Diagnostic] = []

    sor_exits: List[Tuple[Instr, Tuple[If, ...]]] = []
    lds_accesses: List[Instr] = []
    _collect(ctx.kernel.body, (), flavor, include_lds, sor_exits, lds_accesses)

    expected_op = "eq" if flavor == "intra" else "ne"
    for ordinal, (store, enclosing) in enumerate(sor_exits):
        comm = communication and not (partial is not None
                                      and ordinal in unprotected)
        diags.extend(
            _check_guarded_store(
                ctx, defs, store, enclosing, expected_op, comm
            )
        )
    if flavor == "intra" and include_lds:
        for access in lds_accesses:
            diags.extend(_check_lds_remap(ctx, defs, access))
    return diags


def _collect(
    body: Sequence[Stmt],
    enclosing: Tuple[If, ...],
    flavor: str,
    include_lds: bool,
    sor_exits: List[Tuple[Instr, Tuple[If, ...]]],
    lds_accesses: List[Instr],
) -> None:
    for stmt in body:
        if isinstance(stmt, If):
            _collect(stmt.then_body, enclosing + (stmt,), flavor, include_lds,
                     sor_exits, lds_accesses)
            _collect(stmt.else_body, enclosing + (stmt,), flavor, include_lds,
                     sor_exits, lds_accesses)
        elif isinstance(stmt, While):
            _collect(stmt.cond_block, enclosing, flavor, include_lds,
                     sor_exits, lds_accesses)
            _collect(stmt.body, enclosing, flavor, include_lds,
                     sor_exits, lds_accesses)
        elif isinstance(stmt, StoreGlobal):
            if not stmt.buf.name.startswith(_RMT_PREFIX):
                sor_exits.append((stmt, enclosing))
        elif isinstance(stmt, AtomicGlobal):
            # A user atomic is a read-modify-write SoR exit: executed by
            # both replicas it would double its architectural effect.
            if not stmt.buf.name.startswith(_RMT_PREFIX):
                sor_exits.append((stmt, enclosing))
        elif isinstance(stmt, StoreLocal):
            if stmt.lds.name.startswith(_RMT_PREFIX):
                continue
            if flavor == "intra" and not include_lds:
                # −LDS: the shared LDS is outside the SoR.
                sor_exits.append((stmt, enclosing))
            elif flavor == "intra" and include_lds:
                lds_accesses.append(stmt)
        elif isinstance(stmt, LoadLocal):
            if (
                flavor == "intra"
                and include_lds
                and not stmt.lds.name.startswith(_RMT_PREFIX)
            ):
                lds_accesses.append(stmt)


# ---------------------------------------------------------------------------
# Guarded-store structure
# ---------------------------------------------------------------------------


def _is_consumer_guard(defs: _Defs, cond: VReg, expected_op: str) -> bool:
    root, _ = defs.resolve(cond)
    d = defs.single(root)
    if not isinstance(d, Cmp) or d.op != expected_op:
        return False
    for parity, zero in ((d.a, d.b), (d.b, d.a)):
        if defs.is_parity_of_id(parity) and defs.const_value(zero) == 0:
            return True
    return False


def _check_guarded_store(
    ctx: LintContext,
    defs: _Defs,
    store: Instr,
    enclosing: Tuple[If, ...],
    expected_op: str,
    communication: bool,
) -> List[Diagnostic]:
    if isinstance(store, StoreGlobal):
        what = f"global store to {store.buf.name!r}"
    elif isinstance(store, AtomicGlobal):
        what = f"global atomic on {store.buf.name!r}"
    else:
        what = f"SoR-exiting local store to {store.lds.name!r}"
    if not enclosing:
        return [
            ctx.diag(
                _CHECKER, ERROR, store,
                f"{what} is not predicated on the consumer duplicate: "
                "both replicas would store (and faults escape undetected)",
            )
        ]
    consumer_if = enclosing[-1]
    if not _is_consumer_guard(defs, consumer_if.cond, expected_op):
        return [
            ctx.diag(
                _CHECKER, ERROR, store,
                f"{what} guard {consumer_if.cond!r} is not the "
                f"consumer-parity predicate (expected `(id & 1) "
                f"{expected_op} 0` through copies)",
            )
        ]
    if not communication:
        return []

    # Locate the mismatch handler among this store's siblings before it.
    body = (
        consumer_if.then_body
        if _contains(consumer_if.then_body, store)
        else consumer_if.else_body
    )
    cmp_leaves: Optional[List[Cmp]] = None
    for stmt in body:
        if stmt is store:
            break
        if isinstance(stmt, If) and _has_report_error(stmt):
            cmp_leaves = _comparison_leaves(defs, stmt.cond)
    if cmp_leaves is None:
        return [
            ctx.diag(
                _CHECKER, ERROR, store,
                f"{what} has no output comparison: no report_error "
                "mismatch handler precedes it under the consumer guard",
            )
        ]

    idx_root, _ = defs.resolve(store.index)
    val_root, _ = defs.resolve(store.value)
    addr_ok = value_ok = False
    for leaf in cmp_leaves:
        if leaf.op != "eq":
            continue
        for mine, theirs in ((leaf.a, leaf.b), (leaf.b, leaf.a)):
            mroot, _ = defs.resolve(mine)
            _troot, via_channel = defs.resolve(theirs)
            if not via_channel:
                continue
            if mroot is idx_root:
                addr_ok = True
            if mroot is val_root:
                value_ok = True
    out = []
    if not addr_ok:
        out.append(
            ctx.diag(
                _CHECKER, ERROR, store,
                f"{what}: output comparison does not check the store "
                "address against the producer's copy",
            )
        )
    if not value_ok:
        out.append(
            ctx.diag(
                _CHECKER, ERROR, store,
                f"{what}: output comparison does not check the store "
                "value against the producer's copy",
            )
        )
    return out


def _contains(body: Sequence[Stmt], target: Instr) -> bool:
    return any(s is target for s in walk_stmts(body))


def _has_report_error(stmt: If) -> bool:
    return any(isinstance(s, ReportError) for s in walk_stmts(stmt.then_body))


def _comparison_leaves(defs: _Defs, cond: VReg) -> List[Cmp]:
    """Cmp instructions under the (negated) conjunction guarding the
    mismatch handler: ``pnot(pand(eq, eq))`` → the two eq leaves."""
    leaves: List[Cmp] = []

    def visit(reg: VReg, depth: int) -> None:
        if depth > 16:
            return
        root, _ = defs.resolve(reg)
        d = defs.single(root)
        if isinstance(d, Cmp):
            leaves.append(d)
        elif isinstance(d, PredOp):
            visit(d.a, depth + 1)
            if d.b is not None:
                visit(d.b, depth + 1)

    visit(cond, 0)
    return leaves


# ---------------------------------------------------------------------------
# +LDS replica remapping
# ---------------------------------------------------------------------------


def _check_lds_remap(
    ctx: LintContext, defs: _Defs, access: Instr
) -> List[Diagnostic]:
    half = access.lds.nelems // 2
    if _has_replica_offset(defs, access.index, half, 0):
        return []
    kind = "store" if isinstance(access, StoreLocal) else "load"
    return [
        ctx.diag(
            _CHECKER, ERROR, access,
            f"LDS {kind} on {access.lds.name!r} is not remapped into a "
            f"replica half: index lacks a `parity * {half}` offset, so "
            "both replicas would share (and corrupt) one copy",
        )
    ]


def _has_replica_offset(defs: _Defs, index: VReg, half: int, depth: int) -> bool:
    """Does the index's add-closure contain a ``(id & 1) * half`` term?"""
    if depth > 16:
        return False
    root, _ = defs.resolve(index)
    d = defs.single(root)
    if not isinstance(d, Alu) or d.b is None:
        return False
    if d.op == "mul":
        for parity, scale in ((d.a, d.b), (d.b, d.a)):
            if defs.is_parity_of_id(parity) and defs.const_value(scale) == half:
                return True
        return False
    if d.op == "add":
        return (
            _has_replica_offset(defs, d.a, half, depth + 1)
            or _has_replica_offset(defs, d.b, half, depth + 1)
        )
    return False
