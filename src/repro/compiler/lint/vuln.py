"""``vuln`` checker: partial sphere-of-replication contract validation.

Ordinary kernels produce no diagnostics — the vulnerability *ranking*
is a report (``python -m repro.lint --vuln``), not a lint failure.  A
kernel that declares ``metadata["rmt"]["partial"]`` however has made a
machine-checkable claim about which SoR exits it protects, and this
checker holds it to that claim:

* ``protected``/``unprotected`` must partition ``range(total)``;
* ``total`` must equal the number of SoR exits actually present;

so a selective build whose declared coverage drifts from its code (a
pass bug, stale metadata after an optimizer change) fails lint instead
of silently certifying against the wrong contract.
"""

from __future__ import annotations

from typing import List

from ..analysis.vulnerability import exit_sites
from .diagnostics import ERROR, Diagnostic
from .engine import LintContext

_CHECKER = "vuln"


def check_vuln(ctx: LintContext) -> List[Diagnostic]:
    meta = ctx.kernel.metadata.get("rmt") or {}
    partial = meta.get("partial")
    if not partial:
        return []
    out: List[Diagnostic] = []

    def err(message: str) -> None:
        out.append(ctx.diag(_CHECKER, ERROR, "<metadata>", message))

    try:
        protected = [int(x) for x in partial.get("protected", ())]
        unprotected = [int(x) for x in partial.get("unprotected", ())]
        total = int(partial.get("total", -1))
    except (TypeError, ValueError):
        err("metadata['rmt']['partial'] is malformed: protected/"
            "unprotected/total must be integer collections")
        return out

    pset, uset = set(protected), set(unprotected)
    if len(pset) != len(protected) or len(uset) != len(unprotected):
        err("partial-SoR contract lists duplicate exit ordinals")
    overlap = pset & uset
    if overlap:
        err(f"partial-SoR contract declares ordinal(s) {sorted(overlap)} "
            "both protected and unprotected")
    if pset | uset != set(range(total)):
        err(f"partial-SoR contract must partition range({total}); got "
            f"protected={sorted(pset)} unprotected={sorted(uset)}")
    actual = len(exit_sites(ctx.kernel))
    if actual != total:
        err(f"partial-SoR contract declares {total} SoR exit(s) but the "
            f"kernel contains {actual}")
    return out
