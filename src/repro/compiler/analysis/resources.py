"""Kernel resource estimation: VGPRs, SGPRs, LDS.

The occupancy model needs a per-work-item VGPR count and per-wave SGPR
count.  We estimate them with a linear-scan liveness over the linearized
statement tree: a register is live from its first definition to its last
use, with ranges extended to the end of any loop that reads them
(loop-carried values stay resident).  Registers proven wavefront-uniform
by the uniformity analysis are charged to the SRF instead of the VRF —
this is why Intra-Group RMT, which leaves scalarized computation
unduplicated, inflates VGPR pressure but not SGPR pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...ir.core import If, Instr, Kernel, Stmt, While
from ...ir.types import DType
from ...gpu.occupancy import KernelResources
from .uniformity import UniformityInfo, analyze_uniformity

#: Baseline VGPRs for addressing/ABI scratch (launch IDs, stack temps).
_VGPR_BASE = 8
#: Baseline SGPRs (kernel arguments, dispatch pointers, exec masks).
_SGPR_BASE = 16
#: Four predicate lanes pack into one 32-bit register's worth of state.
_PRED_WEIGHT = 0.25


def estimate_resources(
    kernel: Kernel, uniformity: UniformityInfo = None
) -> KernelResources:
    """Estimate the kernel's register and LDS footprint."""
    if uniformity is None:
        uniformity = analyze_uniformity(kernel)

    events: List[Tuple[int, Instr]] = []
    loop_spans: List[Tuple[int, int]] = []
    _linearize(kernel.body, events, loop_spans, counter=[0])

    first_def: Dict[int, int] = {}
    last_use: Dict[int, int] = {}
    reg_of: Dict[int, object] = {}
    for pos, instr in events:
        for dst in instr.dests():
            first_def.setdefault(id(dst), pos)
            last_use[id(dst)] = max(last_use.get(id(dst), pos), pos)
            reg_of[id(dst)] = dst
        for src in instr.sources():
            first_def.setdefault(id(src), pos)  # params/IDs defined upstream
            last_use[id(src)] = max(last_use.get(id(src), pos), pos)
            reg_of[id(src)] = src

    # Extend ranges across enclosing loops: a value defined before or used
    # inside a loop must survive the whole loop.
    for rid in list(first_def):
        fd, lu = first_def[rid], last_use[rid]
        for lo, hi in loop_spans:
            # Defined before the loop and touched inside it: live across
            # every iteration, so the range covers the whole loop.
            if fd < lo and lo <= lu <= hi:
                lu = max(lu, hi)
        last_use[rid] = lu

    # Sweep for maximum overlap, split by register class.
    points: List[Tuple[int, int, float, bool]] = []  # (pos, delta_order, weight, scalar)
    for rid, fd in first_def.items():
        lu = last_use[rid]
        reg = reg_of[rid]
        weight = _PRED_WEIGHT if reg.dtype is DType.PRED else 1.0
        scalar = uniformity.is_uniform(reg)
        points.append((fd, 0, weight, scalar))
        points.append((lu + 1, 1, -weight, scalar))
    points.sort(key=lambda p: (p[0], p[1]))

    cur_v = cur_s = 0.0
    max_v = max_s = 0.0
    for _pos, _o, weight, scalar in points:
        if scalar:
            cur_s += weight
            max_s = max(max_s, cur_s)
        else:
            cur_v += weight
            max_v = max(max_v, cur_v)

    vgprs = _VGPR_BASE + int(-(-max_v // 1))
    sgprs = _SGPR_BASE + int(-(-max_s // 1))
    return KernelResources(
        vgprs_per_workitem=vgprs,
        sgprs_per_wave=sgprs,
        lds_bytes_per_group=kernel.lds_bytes(),
    )


def _linearize(
    body: List[Stmt],
    events: List[Tuple[int, Instr]],
    loop_spans: List[Tuple[int, int]],
    counter: List[int],
) -> None:
    for stmt in body:
        if isinstance(stmt, If):
            _linearize(stmt.then_body, events, loop_spans, counter)
            _linearize(stmt.else_body, events, loop_spans, counter)
        elif isinstance(stmt, While):
            start = counter[0]
            _linearize(stmt.cond_block, events, loop_spans, counter)
            _linearize(stmt.body, events, loop_spans, counter)
            loop_spans.append((start, counter[0]))
        else:
            events.append((counter[0], stmt))
            counter[0] += 1
