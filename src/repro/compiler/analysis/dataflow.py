"""Kernel IR dataflow framework: CFG lowering and classic analyses.

The structured IR (:class:`~repro.ir.core.If`/:class:`~repro.ir.core.While`
trees) is convenient for the RMT transformation passes, but the lint
checkers need path-sensitive facts — which definitions reach a use, which
statements a barrier separates, what dominates what.  This module lowers
a kernel body into an explicit control-flow graph and implements the
standard dataflow analyses on it:

* **dominators** — iterative bit-vector dataflow (entry dominates all);
* **reaching definitions** — forward *may* analysis over def sites;
* **liveness** — backward *may* analysis over virtual registers;
* **definite assignment** — forward *must* analysis (the dominance-based
  undefined-register check is built on it);
* **barrier intervals** — forward *may* "last barrier executed" analysis,
  the synchronization skeleton the LDS race detector works from.

Bit sets are Python ints (one bit per block/def/register), which keeps
the fixpoints cheap even for the transformed suite kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ...ir.core import Barrier, If, Instr, Kernel, Stmt, VReg, While

# ---------------------------------------------------------------------------
# Statement locations
# ---------------------------------------------------------------------------


class Loc:
    """Structured-IR path of a statement, for human-readable diagnostics.

    Rendered like ``body[4].then[1].while.body[0]`` — stable across
    clones of the same kernel, unlike ``id()``-based handles.
    """

    __slots__ = ("steps",)

    def __init__(self, steps: Tuple[str, ...] = ()):
        self.steps = steps

    def child(self, step: str) -> "Loc":
        return Loc(self.steps + (step,))

    def __str__(self) -> str:
        return ".".join(self.steps) if self.steps else "<entry>"

    def __repr__(self) -> str:
        return f"Loc({self})"


# ---------------------------------------------------------------------------
# CFG
# ---------------------------------------------------------------------------


@dataclass
class BasicBlock:
    """Straight-line run of instructions plus an optional condition use.

    ``cond`` (with ``cond_loc``) marks a block whose out-edges are the
    taken/not-taken successors of a structured branch; it is a *use* of
    the register, not an instruction.
    """

    bid: int
    instrs: List[Tuple[Instr, Loc]] = field(default_factory=list)
    cond: Optional[VReg] = None
    cond_loc: Optional[Loc] = None
    preds: List[int] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)


class CFG:
    """Explicit control-flow graph for one kernel body."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.blocks: List[BasicBlock] = []
        self.entry = self._new_block().bid
        exit_of_body = self._lower_body(kernel.body, self.entry, Loc(("body",)))
        self.exit = self._new_block().bid
        self._edge(exit_of_body, self.exit)
        #: id(instr) -> Loc for every lowered instruction.
        self.locs: Dict[int, Loc] = {
            id(instr): loc for b in self.blocks for instr, loc in b.instrs
        }

    # -- construction -------------------------------------------------------

    def _new_block(self) -> BasicBlock:
        b = BasicBlock(len(self.blocks))
        self.blocks.append(b)
        return b

    def _edge(self, src: int, dst: int) -> None:
        self.blocks[src].succs.append(dst)
        self.blocks[dst].preds.append(src)

    def _lower_body(self, body: Sequence[Stmt], cur: int, loc: Loc) -> int:
        """Append ``body`` starting in block ``cur``; return the exit block."""
        for i, stmt in enumerate(body):
            at = loc.child(f"[{i}]")
            if isinstance(stmt, If):
                head = self.blocks[cur]
                head.cond = stmt.cond
                head.cond_loc = at.child("if")
                then_entry = self._new_block().bid
                self._edge(cur, then_entry)
                then_exit = self._lower_body(stmt.then_body, then_entry, at.child("then"))
                join = self._new_block().bid
                self._edge(then_exit, join)
                if stmt.else_body:
                    else_entry = self._new_block().bid
                    self._edge(cur, else_entry)
                    else_exit = self._lower_body(
                        stmt.else_body, else_entry, at.child("else")
                    )
                    self._edge(else_exit, join)
                else:
                    self._edge(cur, join)
                cur = join
            elif isinstance(stmt, While):
                cond_entry = self._new_block().bid
                self._edge(cur, cond_entry)
                cond_exit = self._lower_body(
                    stmt.cond_block, cond_entry, at.child("cond")
                )
                test = self.blocks[cond_exit]
                test.cond = stmt.cond
                test.cond_loc = at.child("while")
                body_entry = self._new_block().bid
                self._edge(cond_exit, body_entry)
                body_exit = self._lower_body(stmt.body, body_entry, at.child("body"))
                self._edge(body_exit, cond_entry)  # back edge
                after = self._new_block().bid
                self._edge(cond_exit, after)
                cur = after
            else:
                self.blocks[cur].instrs.append((stmt, at))
        return cur

    # -- conveniences --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.blocks)

    def iter_instrs(self) -> Iterator[Tuple[int, Instr, Loc]]:
        """Yield (block id, instruction, location) in block order."""
        for b in self.blocks:
            for instr, loc in b.instrs:
                yield b.bid, instr, loc

    def rpo(self) -> List[int]:
        """Reverse postorder from the entry block."""
        seen = [False] * len(self.blocks)
        order: List[int] = []

        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        seen[self.entry] = True
        while stack:
            bid, next_succ = stack[-1]
            succs = self.blocks[bid].succs
            if next_succ < len(succs):
                stack[-1] = (bid, next_succ + 1)
                s = succs[next_succ]
                if not seen[s]:
                    seen[s] = True
                    stack.append((s, 0))
            else:
                order.append(bid)
                stack.pop()
        order.reverse()
        return order


def build_cfg(kernel: Kernel) -> CFG:
    """Lower a kernel's structured body into an explicit CFG."""
    return CFG(kernel)


# ---------------------------------------------------------------------------
# Dominators
# ---------------------------------------------------------------------------


def compute_dominators(cfg: CFG) -> List[int]:
    """Per-block dominator sets as bit masks (bit b => block b dominates).

    Iterative bit-vector formulation: DOM(entry) = {entry};
    DOM(b) = {b} | AND over preds.  Unreachable blocks keep the full set.
    """
    n = len(cfg.blocks)
    full = (1 << n) - 1
    dom = [full] * n
    dom[cfg.entry] = 1 << cfg.entry
    order = cfg.rpo()
    changed = True
    while changed:
        changed = False
        for bid in order:
            if bid == cfg.entry:
                continue
            preds = cfg.blocks[bid].preds
            acc = full
            for p in preds:
                acc &= dom[p]
            acc |= 1 << bid
            if acc != dom[bid]:
                dom[bid] = acc
                changed = True
    return dom


def dominates(dom: List[int], a: int, b: int) -> bool:
    """Does block ``a`` dominate block ``b``?"""
    return bool(dom[b] >> a & 1)


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DefSite:
    """One static definition of a register."""

    index: int          # global def-site number (bit position)
    reg: VReg
    instr: Instr
    block: int
    loc: Loc


@dataclass
class ReachingDefs:
    """Reaching-definition sets at block boundaries plus per-use lookup."""

    sites: List[DefSite]
    block_in: List[int]
    block_out: List[int]
    #: id(instr) -> bit mask of def sites reaching just before the instr.
    before_instr: Dict[int, int]
    _by_reg: Dict[int, int]

    def defs_of(self, mask: int, reg: VReg) -> List[DefSite]:
        """Def sites of ``reg`` present in a reaching mask."""
        m = mask & self._by_reg.get(id(reg), 0)
        out = []
        while m:
            low = m & -m
            out.append(self.sites[low.bit_length() - 1])
            m ^= low
        return out

    def reaching(self, instr: Instr, reg: VReg) -> List[DefSite]:
        """Def sites of ``reg`` reaching just before ``instr``."""
        return self.defs_of(self.before_instr.get(id(instr), 0), reg)


def reaching_definitions(cfg: CFG) -> ReachingDefs:
    """Forward may-analysis: which definitions reach each program point."""
    sites: List[DefSite] = []
    by_reg: Dict[int, int] = {}
    gen: List[int] = [0] * len(cfg.blocks)
    kill_regs: List[Set[int]] = [set() for _ in cfg.blocks]
    for bid, instr, loc in cfg.iter_instrs():
        for dst in instr.dests():
            site = DefSite(len(sites), dst, instr, bid, loc)
            sites.append(site)
            by_reg[id(dst)] = by_reg.get(id(dst), 0) | (1 << site.index)

    # Per-block gen/kill: later defs of the same register kill earlier ones.
    site_iter = iter(sites)
    per_block_sites: List[List[DefSite]] = [[] for _ in cfg.blocks]
    for s in site_iter:
        per_block_sites[s.block].append(s)
    for bid, block_sites in enumerate(per_block_sites):
        g = 0
        for s in block_sites:
            g = (g & ~by_reg[id(s.reg)]) | (1 << s.index)
            kill_regs[bid].add(id(s.reg))
        gen[bid] = g

    n = len(cfg.blocks)
    block_in = [0] * n
    block_out = [0] * n
    order = cfg.rpo()
    changed = True
    while changed:
        changed = False
        for bid in order:
            acc = 0
            for p in cfg.blocks[bid].preds:
                acc |= block_out[p]
            kill = 0
            for rid in kill_regs[bid]:
                kill |= by_reg[rid]
            out = (acc & ~kill) | gen[bid]
            if acc != block_in[bid] or out != block_out[bid]:
                block_in[bid] = acc
                block_out[bid] = out
                changed = True

    before_instr: Dict[int, int] = {}
    for b in cfg.blocks:
        cur = block_in[b.bid]
        for instr, _loc in b.instrs:
            before_instr[id(instr)] = cur
            for dst in instr.dests():
                site_mask = by_reg[id(dst)]
                # The def site belonging to *this* instr generates.
                mine = 0
                for s in per_block_sites[b.bid]:
                    if s.instr is instr and s.reg is dst:
                        mine |= 1 << s.index
                cur = (cur & ~site_mask) | mine
    return ReachingDefs(sites, block_in, block_out, before_instr, by_reg)


# ---------------------------------------------------------------------------
# Liveness
# ---------------------------------------------------------------------------


@dataclass
class Liveness:
    """Live-register sets at block boundaries."""

    regs: List[VReg]
    live_in: List[int]
    live_out: List[int]
    _index: Dict[int, int]

    def regs_in(self, bid: int) -> List[VReg]:
        return self._unpack(self.live_in[bid])

    def regs_out(self, bid: int) -> List[VReg]:
        return self._unpack(self.live_out[bid])

    def max_live(self) -> int:
        """Peak simultaneous live registers over block boundaries."""
        return max(
            (bin(m).count("1") for m in self.live_in + self.live_out), default=0
        )

    def _unpack(self, mask: int) -> List[VReg]:
        out = []
        while mask:
            low = mask & -mask
            out.append(self.regs[low.bit_length() - 1])
            mask ^= low
        return out


def liveness(cfg: CFG) -> Liveness:
    """Backward may-analysis: registers whose values may still be read."""
    regs: List[VReg] = []
    index: Dict[int, int] = {}

    def idx(reg: VReg) -> int:
        i = index.get(id(reg))
        if i is None:
            i = len(regs)
            index[id(reg)] = i
            regs.append(reg)
        return i

    n = len(cfg.blocks)
    use = [0] * n       # upward-exposed uses
    defmask = [0] * n
    for b in cfg.blocks:
        u = d = 0
        for instr, _loc in b.instrs:
            for src in instr.sources():
                bit = 1 << idx(src)
                if not d & bit:
                    u |= bit
            for dst in instr.dests():
                d |= 1 << idx(dst)
        if b.cond is not None:
            bit = 1 << idx(b.cond)
            if not d & bit:
                u |= bit
        use[b.bid] = u
        defmask[b.bid] = d

    live_in = [0] * n
    live_out = [0] * n
    order = cfg.rpo()
    changed = True
    while changed:
        changed = False
        for bid in reversed(order):
            out = 0
            for s in cfg.blocks[bid].succs:
                out |= live_in[s]
            inn = use[bid] | (out & ~defmask[bid])
            if out != live_out[bid] or inn != live_in[bid]:
                live_out[bid] = out
                live_in[bid] = inn
                changed = True
    return Liveness(regs, live_in, live_out, index)


# ---------------------------------------------------------------------------
# Definite assignment (must-defined)
# ---------------------------------------------------------------------------


@dataclass
class DefiniteAssignment:
    """Forward must-analysis results: registers defined on *every* path."""

    regs: List[VReg]
    block_in: List[int]
    _index: Dict[int, int]
    #: (instr id, reg) pairs read before any definition is guaranteed.
    violations: List[Tuple[Instr, VReg, Loc]]
    #: cond-use violations: (block id, reg, loc).
    cond_violations: List[Tuple[int, VReg, Loc]]

    def is_definite_at_entry(self, bid: int, reg: VReg) -> bool:
        i = self._index.get(id(reg))
        return i is not None and bool(self.block_in[bid] >> i & 1)


def definite_assignment(cfg: CFG) -> DefiniteAssignment:
    """Find reads not dominated by a definition on every incoming path.

    This is the precise replacement for the verifier's program-order
    heuristic: a register defined only in one arm of an ``If`` (or only
    in a ``While`` body, which may run zero times) is *not* definitely
    assigned afterwards.
    """
    regs: List[VReg] = []
    index: Dict[int, int] = {}

    def idx(reg: VReg) -> int:
        i = index.get(id(reg))
        if i is None:
            i = len(regs)
            index[id(reg)] = i
            regs.append(reg)
        return i

    # Pre-intern every register so the universe mask is stable.
    for _bid, instr, _loc in cfg.iter_instrs():
        for r in (*instr.dests(), *instr.sources()):
            idx(r)
    for b in cfg.blocks:
        if b.cond is not None:
            idx(b.cond)

    n = len(cfg.blocks)
    full = (1 << len(regs)) - 1 if regs else 0
    defmask = [0] * n
    for b in cfg.blocks:
        d = 0
        for instr, _loc in b.instrs:
            for dst in instr.dests():
                d |= 1 << index[id(dst)]
        defmask[b.bid] = d

    block_in = [full] * n
    block_in[cfg.entry] = 0
    order = cfg.rpo()
    changed = True
    while changed:
        changed = False
        for bid in order:
            if bid == cfg.entry:
                continue
            preds = cfg.blocks[bid].preds
            if not preds:
                continue
            acc = full
            for p in preds:
                acc &= block_in[p] | defmask[p]
            if acc != block_in[bid]:
                block_in[bid] = acc
                changed = True

    violations: List[Tuple[Instr, VReg, Loc]] = []
    cond_violations: List[Tuple[int, VReg, Loc]] = []
    for b in cfg.blocks:
        cur = block_in[b.bid]
        for instr, loc in b.instrs:
            for src in instr.sources():
                if not cur >> index[id(src)] & 1:
                    violations.append((instr, src, loc))
            for dst in instr.dests():
                cur |= 1 << index[id(dst)]
        if b.cond is not None and not cur >> index[id(b.cond)] & 1:
            cond_violations.append((b.bid, b.cond, b.cond_loc or Loc()))
    return DefiniteAssignment(regs, block_in, index, violations, cond_violations)


# ---------------------------------------------------------------------------
# Barrier intervals
# ---------------------------------------------------------------------------

#: Pseudo-barrier id for "kernel entry" (no barrier executed yet).
ENTRY_BARRIER = -1


@dataclass
class BarrierIntervals:
    """"Last barrier executed" sets — the synchronization skeleton.

    Two statements can be interleaved by different wavefronts of a
    work-group iff some barrier (or kernel entry) appears in both of
    their last-barrier sets: there is then an execution where no barrier
    separates them.
    """

    #: barrier instruction id -> dense barrier index.
    barrier_ids: Dict[int, int]
    #: id(instr) -> frozenset of barrier indices (ENTRY_BARRIER for entry).
    before_instr: Dict[int, frozenset]

    def may_share_interval(self, a: Instr, b: Instr) -> bool:
        sa = self.before_instr.get(id(a))
        sb = self.before_instr.get(id(b))
        if sa is None or sb is None:
            return True  # unknown statements: be conservative
        return bool(sa & sb)


def barrier_intervals(cfg: CFG) -> BarrierIntervals:
    """Forward may-analysis of which barrier was most recently executed."""
    barrier_ids: Dict[int, int] = {}
    for _bid, instr, _loc in cfg.iter_instrs():
        if isinstance(instr, Barrier):
            barrier_ids[id(instr)] = len(barrier_ids)

    n = len(cfg.blocks)
    block_in: List[Set[int]] = [set() for _ in range(n)]
    block_in[cfg.entry] = {ENTRY_BARRIER}

    def transfer(bid: int, inset: Set[int]) -> Set[int]:
        cur = inset
        for instr, _loc in cfg.blocks[bid].instrs:
            if isinstance(instr, Barrier):
                cur = {barrier_ids[id(instr)]}
        return cur

    order = cfg.rpo()
    changed = True
    while changed:
        changed = False
        for bid in order:
            if bid != cfg.entry:
                acc: Set[int] = set()
                for p in cfg.blocks[bid].preds:
                    acc |= transfer(p, block_in[p])
                if acc != block_in[bid]:
                    block_in[bid] = acc
                    changed = True

    before_instr: Dict[int, frozenset] = {}
    for b in cfg.blocks:
        cur = set(block_in[b.bid])
        for instr, _loc in b.instrs:
            before_instr[id(instr)] = frozenset(cur)
            if isinstance(instr, Barrier):
                cur = {barrier_ids[id(instr)]}
    return BarrierIntervals(barrier_ids, before_instr)


def barrier_free_path(cfg: CFG, a: Instr, b: Instr) -> bool:
    """Is there a CFG path from ``a`` to ``b`` crossing no barrier?

    This is the precise form of the interval question: two dynamic
    instances of ``a`` and ``b`` can fall in the same barrier interval
    iff such a path exists in *some* direction (or ``a is b``).  Unlike
    the last-barrier-set approximation it distinguishes barrier
    *instances*: a loop-body store followed by the loop's trailing
    barrier cannot race with a read after the loop, even though both
    sit "after" the same static barrier.
    """
    if a is b:
        return True
    where: Dict[int, Tuple[int, int]] = {}
    for bid, block in enumerate(cfg.blocks):
        for idx, (instr, _loc) in enumerate(block.instrs):
            where[id(instr)] = (bid, idx)
    if id(a) not in where or id(b) not in where:
        return True  # unknown statements: be conservative
    bid_a, ia = where[id(a)]
    bid_b, ib = where[id(b)]

    def clear(bid: int, start: int, stop: Optional[int]) -> bool:
        seg = cfg.blocks[bid].instrs[start:stop]
        return not any(isinstance(i, Barrier) for i, _loc in seg)

    if bid_a == bid_b and ia < ib and clear(bid_a, ia + 1, ib):
        return True
    # Can we leave a's block past its remaining instructions?
    if not clear(bid_a, ia + 1, None):
        return False
    work = list(cfg.blocks[bid_a].succs)
    seen: Set[int] = set()
    while work:
        bid = work.pop()
        if bid in seen:
            continue
        seen.add(bid)
        if bid == bid_b and clear(bid, 0, ib):
            return True
        if clear(bid, 0, None):
            work.extend(cfg.blocks[bid].succs)
    return False
