"""Wavefront uniformity analysis.

Identifies instructions whose result is provably identical across all
work-items of a wavefront.  The backend executes such instructions on the
scalar unit (SU) with results in the scalar register file (SRF) — GCN's
scalarization described in Section 3.3 of the paper.

This analysis is what gives the RMT flavors their different spheres of
replication: Intra-Group work-item pairs share a wavefront, so scalarized
computation is *not* replicated (SU/SRF outside the SoR — Table 2), while
Inter-Group redundant pairs live in different wavefronts and re-execute
scalar work (SU/SRF inside the SoR — Table 3).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Set

from ...ir.core import (
    Alu,
    AtomicGlobal,
    Cmp,
    Const,
    If,
    Kernel,
    LoadGlobal,
    LoadLocal,
    LoadParam,
    PredOp,
    Select,
    SpecialId,
    Stmt,
    Swizzle,
)

#: ID intrinsics whose value is shared by every lane of a wavefront.
_UNIFORM_IDS = frozenset({"group_id", "global_size", "local_size", "num_groups"})


@dataclass
class UniformityInfo:
    """Result of the analysis."""

    #: ``id(instr)`` of every instruction executable on the scalar unit.
    scalar_instrs: Set[int] = field(default_factory=set)
    #: ``id(reg)`` of every register proven wavefront-uniform.
    uniform_regs: Set[int] = field(default_factory=set)

    def is_scalar(self, instr) -> bool:
        return id(instr) in self.scalar_instrs

    def is_uniform(self, reg) -> bool:
        return id(reg) in self.uniform_regs


def analyze_uniformity(kernel: Kernel) -> UniformityInfo:
    """Compute the uniform instruction/register sets for a kernel.

    Non-SSA registers and loop-carried values need a fixpoint: a register
    that looks uniform on the first pass may be demoted by a later
    non-uniform redefinition, demoting its uses in turn.  The lattice
    only moves downward (uniform → vector), so iteration terminates.
    """
    info = UniformityInfo()
    # Each non-converged iteration must demote at least one register or
    # instruction, so the register count bounds the true iteration need;
    # the generous cap below only guards against an analysis bug looping
    # forever on a state that never stabilizes.
    max_iters = max(32, 2 * len(kernel.all_regs()) + 8)
    for _ in range(max_iters):
        before = (frozenset(info.scalar_instrs), frozenset(info.uniform_regs))
        _walk(kernel.body, info, divergent=False)
        if (frozenset(info.scalar_instrs), frozenset(info.uniform_regs)) == before:
            break
    else:
        warnings.warn(
            f"uniformity analysis did not converge on kernel "
            f"{kernel.name!r} after {max_iters} iterations; "
            "results may be optimistic",
            RuntimeWarning,
            stacklevel=2,
        )
    return info


def _walk(body, info: UniformityInfo, divergent: bool) -> None:
    for stmt in body:
        if isinstance(stmt, If):
            inner_div = divergent or not info.is_uniform(stmt.cond)
            _walk(stmt.then_body, info, inner_div)
            _walk(stmt.else_body, info, inner_div)
        elif hasattr(stmt, "cond_block"):  # While
            _walk(stmt.cond_block, info, divergent)
            inner_div = divergent or not info.is_uniform(stmt.cond)
            _walk(stmt.body, info, inner_div)
        else:
            _visit_instr(stmt, info, divergent)


def _visit_instr(instr, info: UniformityInfo, divergent: bool) -> None:
    uniform = False
    cls = type(instr)
    if cls in (Const, LoadParam):
        uniform = True
    elif cls is SpecialId:
        uniform = instr.kind in _UNIFORM_IDS
    elif cls in (Alu, Cmp, PredOp, Select):
        uniform = all(info.is_uniform(s) for s in instr.sources())
    elif cls is LoadGlobal:
        # A global load with a wavefront-uniform address scalarizes onto
        # the SU / constant cache (GCN s_buffer_load) — this is how the
        # broadcast table/mask/coefficient reads of SC, DCT, QRS, NB and
        # BO execute on real hardware.
        uniform = info.is_uniform(instr.index)
    elif cls in (LoadLocal, AtomicGlobal, Swizzle):
        uniform = False  # LDS loads and atomics stay on the vector path
    # else: stores/barrier/report define nothing

    dests = instr.dests()
    if not dests:
        return
    dst = dests[0]
    if uniform and not divergent:
        info.scalar_instrs.add(id(instr))
        info.uniform_regs.add(id(dst))
    else:
        # Non-SSA: a non-uniform redefinition demotes the register.
        info.uniform_regs.discard(id(dst))
        info.scalar_instrs.discard(id(instr))
