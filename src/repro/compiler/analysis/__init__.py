"""Compiler analyses: uniformity, resource estimation, SoR coverage."""

from .resources import estimate_resources
from .sor import STRUCTURES, SorEntry, SorReport, analyze_sor
from .uniformity import UniformityInfo, analyze_uniformity

__all__ = [
    "STRUCTURES",
    "SorEntry",
    "SorReport",
    "UniformityInfo",
    "analyze_sor",
    "analyze_uniformity",
    "estimate_resources",
]
