"""Compiler analyses: uniformity, resource estimation, SoR coverage,
and the CFG/dataflow framework backing the lint suite."""

from .dataflow import (
    CFG,
    BarrierIntervals,
    BasicBlock,
    DefiniteAssignment,
    DefSite,
    Liveness,
    Loc,
    ReachingDefs,
    barrier_free_path,
    barrier_intervals,
    build_cfg,
    compute_dominators,
    definite_assignment,
    dominates,
    liveness,
    reaching_definitions,
)
from .resources import estimate_resources
from .sor import STRUCTURES, SorEntry, SorReport, analyze_sor
from .uniformity import UniformityInfo, analyze_uniformity

__all__ = [
    "BarrierIntervals",
    "BasicBlock",
    "CFG",
    "DefSite",
    "DefiniteAssignment",
    "Liveness",
    "Loc",
    "ReachingDefs",
    "STRUCTURES",
    "SorEntry",
    "SorReport",
    "UniformityInfo",
    "analyze_sor",
    "analyze_uniformity",
    "barrier_free_path",
    "barrier_intervals",
    "build_cfg",
    "compute_dominators",
    "definite_assignment",
    "dominates",
    "estimate_resources",
    "liveness",
    "reaching_definitions",
]
