"""Sphere-of-replication (SoR) coverage analysis.

Derives, for a transformed kernel, which compute-unit structures fall
inside the sphere of replication — reproducing the reasoning behind
Tables 2 and 3 of the paper:

* **Intra-Group** pairs share a wavefront, so per-lane state (VRF, SIMD
  ALUs) is replicated, but everything amortized across a wavefront —
  scalar unit, scalar register file, instruction fetch/scheduling/decode —
  is shared, and memory requests may coalesce in the shared L1.
* **Intra-Group+LDS** doubles LDS allocations, pulling the LDS inside.
* **Inter-Group** pairs live in different work-groups (hence wavefronts),
  replicating scalar work and front-end state; only the L1 stays outside
  because two redundant groups may co-resident on a CU and share lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ...ir.core import Kernel

#: Structure display names in the order Tables 2 and 3 list them.
STRUCTURES = (
    "SIMD ALU",
    "VRF",
    "LDS",
    "SU",
    "SRF",
    "ID",
    "IF/SCHED",
    "R/W L1$",
)


@dataclass(frozen=True)
class SorEntry:
    structure: str
    protected: bool
    reason: str


@dataclass
class SorReport:
    """Coverage report for one RMT flavor applied to one kernel."""

    kernel_name: str
    flavor: str
    entries: List[SorEntry] = field(default_factory=list)

    @property
    def protected(self) -> Tuple[str, ...]:
        return tuple(e.structure for e in self.entries if e.protected)

    @property
    def unprotected(self) -> Tuple[str, ...]:
        return tuple(e.structure for e in self.entries if not e.protected)

    def as_row(self) -> Dict[str, bool]:
        """Checkmark row keyed by structure name (Table 2/3 format)."""
        return {e.structure: e.protected for e in self.entries}


def analyze_sor(kernel: Kernel) -> SorReport:
    """Build the SoR report from a transformed kernel's RMT metadata."""
    meta = kernel.metadata.get("rmt")
    if not meta:
        return _untransformed_report(kernel)
    flavor = meta["flavor"]
    if flavor == "intra":
        rpt = _intra_report(kernel, include_lds=meta["include_lds"])
        partial = meta.get("partial")
        if partial:
            rpt = _selective_report(rpt, partial)
        return rpt
    if flavor == "inter":
        return _inter_report(kernel)
    raise ValueError(f"unknown RMT flavor {flavor!r}")


def _selective_report(base: SorReport, partial: Dict) -> SorReport:
    """Overlay a declared partial sphere onto an intra-flavor report.

    The *structures* inside the sphere are those of the base flavor, but
    only the declared subset of SoR exits carries output comparisons —
    recorded as an extra row so Table-2-style summaries surface the
    coverage reduction instead of silently claiming the full sphere.
    """
    protected = list(partial.get("protected", ()))
    total = int(partial.get("total", len(protected)))
    rpt = SorReport(base.kernel_name, "selective")
    rpt.entries.extend(base.entries)
    fully = len(protected) >= total
    rpt.entries.append(SorEntry(
        "OUTPUT CMP", fully,
        f"output comparison on {len(protected)}/{total} SoR exits "
        "(declared partial sphere of replication)"))
    return rpt


def _untransformed_report(kernel: Kernel) -> SorReport:
    rpt = SorReport(kernel.name, "none")
    for s in STRUCTURES:
        rpt.entries.append(SorEntry(s, False, "no redundancy applied"))
    return rpt


def _intra_report(kernel: Kernel, include_lds: bool) -> SorReport:
    flavor = "intra+lds" if include_lds else "intra-lds"
    rpt = SorReport(kernel.name, flavor)
    add = rpt.entries.append
    add(SorEntry("SIMD ALU", True,
                 "redundant work-items occupy distinct SIMD lanes"))
    add(SorEntry("VRF", True,
                 "OpenCL allocates separate registers per work-item"))
    if include_lds:
        add(SorEntry("LDS", True,
                     "allocation doubled; redundant accesses remapped to "
                     "private copies"))
    else:
        add(SorEntry("LDS", False,
                     "allocation shared between redundant work-items; "
                     "local stores get output comparisons instead"))
    add(SorEntry("SU", False,
                 "scalar computation shared by the redundant pair's wavefront"))
    add(SorEntry("SRF", False,
                 "scalar registers shared by the redundant pair's wavefront"))
    add(SorEntry("ID", False,
                 "redundant pair shares one decoded instruction stream"))
    add(SorEntry("IF/SCHED", False,
                 "redundant pair shares fetch/scheduling state"))
    add(SorEntry("R/W L1$", False,
                 "redundant pair's global requests may coalesce to one line"))
    return rpt


def _inter_report(kernel: Kernel) -> SorReport:
    rpt = SorReport(kernel.name, "inter")
    add = rpt.entries.append
    add(SorEntry("SIMD ALU", True,
                 "redundant work-groups issue separate vector instructions"))
    add(SorEntry("VRF", True,
                 "separate wavefronts allocate separate vector registers"))
    add(SorEntry("LDS", True,
                 "each work-group receives its own LDS allocation"))
    add(SorEntry("SU", True,
                 "scalar instructions re-execute per redundant work-group"))
    add(SorEntry("SRF", True,
                 "scalar registers allocated per redundant wavefront"))
    add(SorEntry("ID", True,
                 "redundant wavefronts decode independently"))
    add(SorEntry("IF/SCHED", True,
                 "redundant wavefronts fetch and schedule independently"))
    add(SorEntry("R/W L1$", False,
                 "redundant groups co-scheduled on one CU may share L1 lines"))
    return rpt
