"""Interval (value-range) abstract interpreter over the structured IR.

Computes, for every integer virtual register, a conservative interval of
the *mathematical* value it can hold, and records the interval of every
memory-access index together with a snapshot of the whole environment at
the access point.  Two clients build on it:

* the **OOB lint** (:mod:`..lint.oob`), which flags accesses whose index
  interval provably (or possibly) leaves the allocation;
* the **translation validator** (:mod:`..tv`), which uses the interval of
  the pre-offset index of a remapped +LDS access to prove that the two
  replica halves of a doubled allocation are disjoint.

Design notes:

* Bounds are ints or ``None`` (±∞).  Arithmetic is over mathematical
  integers — no 32-bit wrap clamping.  A u32 subtraction that can
  underflow therefore yields a negative lower bound, which downstream
  reads as "the machine value may wrap to a huge index": sound for
  bounds checking in both directions.  Re-anchoring operations (``and``
  with a non-negative mask, ``rem`` by a known-positive divisor of a
  non-negative value) return machine-exact non-negative intervals.
* Loops use the classic **directional widening**: a bound that moved
  between iterations widens to ±∞, a stable bound is kept.  This is what
  lets a halving loop (``stride >>= 1`` from ``ls/2``) retain its upper
  bound while the lower bound is re-sharpened by the loop guard.
* Branch conditions **refine** intervals in each arm (and in loop
  bodies / after loop exit) through the conjunctive predicate tree, with
  constraints killed when a mentioned register is reassigned (the IR is
  not SSA).
* ``sub(max(x, y), y)`` is recognized as ``max(x - y, 0)`` — needed for
  the PrefixSum partner-index idiom — guarded by a version check so the
  rewrite only fires when ``y`` was not reassigned in between.

Work-item ID intrinsics take their bounds from ``metadata['local_size']``
and ``metadata['global_size']`` when present.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...ir.core import (
    Alu,
    AtomicGlobal,
    Cmp,
    Const,
    If,
    Instr,
    Kernel,
    LoadGlobal,
    LoadLocal,
    LoadParam,
    PredOp,
    Select,
    SpecialId,
    Stmt,
    StoreGlobal,
    StoreLocal,
    VReg,
    While,
)
from ...ir.types import DType

_INT = (DType.U32, DType.I32)


# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------


class Interval:
    """Closed integer interval; a ``None`` bound means unbounded."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Optional[int], hi: Optional[int]):
        self.lo = lo
        self.hi = hi

    # -- constructors ------------------------------------------------------

    @staticmethod
    def top() -> "Interval":
        return Interval(None, None)

    @staticmethod
    def const(v: int) -> "Interval":
        return Interval(v, v)

    @staticmethod
    def nonneg() -> "Interval":
        return Interval(0, None)

    # -- predicates --------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    @property
    def is_bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    def within(self, lo: int, hi: int) -> bool:
        """Provably ``lo <= value <= hi``?"""
        return (
            self.lo is not None and self.hi is not None
            and self.lo >= lo and self.hi <= hi
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Interval)
            and self.lo == other.lo and self.hi == other.hi
        )

    def __hash__(self):
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"

    # -- lattice -----------------------------------------------------------

    def hull(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Directional widening: drop only the bound that moved."""
        lo = (
            self.lo
            if self.lo is not None and newer.lo is not None and newer.lo >= self.lo
            else None
        )
        hi = (
            self.hi
            if self.hi is not None and newer.hi is not None and newer.hi <= self.hi
            else None
        )
        return Interval(lo, hi)

    def clamp_lo(self, lo: Optional[int]) -> "Interval":
        if lo is None:
            return self
        new_lo = lo if self.lo is None else max(self.lo, lo)
        return Interval(new_lo, self.hi)

    def clamp_hi(self, hi: Optional[int]) -> "Interval":
        if hi is None:
            return self
        new_hi = hi if self.hi is None else min(self.hi, hi)
        return Interval(self.lo, new_hi)


def _default(reg: VReg) -> Interval:
    """Interval for a register we know nothing about but its type."""
    # An opaque u32 value that nothing has wrapped is a machine value in
    # [0, 2^32); anchoring it at >= 0 is what keeps later subtraction
    # results honest about possible underflow.
    if reg.dtype is DType.U32:
        return Interval.nonneg()
    return Interval.top()


# -- bound-aware arithmetic helpers -----------------------------------------


def _addb(a: Optional[int], b: Optional[int]) -> Optional[int]:
    return None if a is None or b is None else a + b


def _iv_add(a: Interval, b: Interval) -> Interval:
    return Interval(_addb(a.lo, b.lo), _addb(a.hi, b.hi))


def _iv_sub(a: Interval, b: Interval) -> Interval:
    return Interval(
        None if a.lo is None or b.hi is None else a.lo - b.hi,
        None if a.hi is None or b.lo is None else a.hi - b.lo,
    )


def _iv_neg(a: Interval) -> Interval:
    return Interval(
        None if a.hi is None else -a.hi,
        None if a.lo is None else -a.lo,
    )


_INF = float("inf")


def _iv_mul(a: Interval, b: Interval) -> Interval:
    def ext(v: Optional[int], sign: float) -> float:
        return sign * _INF if v is None else v

    def mulx(x: float, y: float) -> float:
        if x == 0 or y == 0:
            return 0.0
        return x * y

    corners = [
        mulx(ext(a.lo, -1), ext(b.lo, -1)),
        mulx(ext(a.lo, -1), ext(b.hi, +1)),
        mulx(ext(a.hi, +1), ext(b.lo, -1)),
        mulx(ext(a.hi, +1), ext(b.hi, +1)),
    ]
    lo, hi = min(corners), max(corners)
    return Interval(
        None if lo == -_INF else int(lo),
        None if hi == _INF else int(hi),
    )


def _iv_minmax(a: Interval, b: Interval, is_max: bool) -> Interval:
    pick = max if is_max else min

    def bound(x: Optional[int], y: Optional[int], unbounded_wins: bool) -> Optional[int]:
        if x is None or y is None:
            if unbounded_wins:
                return None
            return y if x is None else x
        return pick(x, y)

    # For max: lo = max(a.lo, b.lo) (a None lo loses), hi = max(a.hi, b.hi)
    # (a None hi wins); dually for min.
    return Interval(
        bound(a.lo, b.lo, unbounded_wins=not is_max),
        bound(a.hi, b.hi, unbounded_wins=is_max),
    )


def _iv_div(a: Interval, b: Interval) -> Interval:
    # Only the non-negative / known-positive case matters for indexing.
    if a.lo is None or a.lo < 0 or b.lo is None or b.lo < 1:
        return Interval.top()
    lo = 0 if b.hi is None else a.lo // b.hi
    hi = None if a.hi is None else a.hi // b.lo
    return Interval(lo, hi)


def _iv_rem(a: Interval, b: Interval) -> Interval:
    if b.lo is None or b.lo < 1:
        return Interval.top()
    hi = None if b.hi is None else b.hi - 1
    if a.lo is not None and a.lo >= 0:
        # Machine-exact re-anchor even when b is unbounded above: the
        # result also never exceeds the dividend.
        return Interval(0, hi if a.hi is None else (a.hi if hi is None else min(a.hi, hi)))
    return Interval(None if hi is None else -hi, hi)


def _pow2_cover(v: int) -> int:
    """Smallest ``2**k - 1`` covering ``v``."""
    return (1 << v.bit_length()) - 1


class _Evaluator:
    """Structured walk computing per-register intervals and access records."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.env: Dict[int, Interval] = {}
        self.penv: Dict[int, object] = {}
        self.regs: Dict[int, VReg] = {}
        #: Monotonic per-register assignment counters; never rolled back,
        #: so a cross-register fact recorded at version v is conservatively
        #: invalidated by *any* later reassignment (joins included).
        self.versions: Dict[int, int] = {}
        #: id(dst of ``max``) -> (id(operand), operand version) for the
        #: ``sub(max(x, y), y) >= 0`` rewrite.
        self.maxinfo: Dict[int, List[Tuple[int, int]]] = {}
        self.accesses: List["AccessRange"] = []
        self.local_size = _norm_shape(kernel.metadata.get("local_size"))
        self.global_size = _norm_shape(kernel.metadata.get("global_size"))
        bn = kernel.metadata.get("buffer_nelems") or {}
        self.buffer_nelems: Dict[str, int] = dict(bn)

    # -- environment -------------------------------------------------------

    def _get(self, reg: VReg) -> Interval:
        iv = self.env.get(id(reg))
        return _default(reg) if iv is None else iv

    def _assign(self, dst: VReg, iv: Interval) -> None:
        rid = id(dst)
        self.regs[rid] = dst
        self.env[rid] = iv
        self.versions[rid] = self.versions.get(rid, 0) + 1
        self.maxinfo.pop(rid, None)
        # Kill predicate trees mentioning the reassigned register: their
        # constraints described the old value.
        for pid, mention in list(self.penv.items()):
            if mention is not None and rid in mention[1]:
                self.penv[pid] = None

    # -- driver ------------------------------------------------------------

    def run(self) -> List["AccessRange"]:
        self._eval_body(self.kernel.body, record=True)
        return self.accesses

    def _eval_body(self, body: List[Stmt], record: bool) -> None:
        for stmt in body:
            if isinstance(stmt, If):
                self._eval_if(stmt, record)
            elif isinstance(stmt, While):
                self._eval_while(stmt, record)
            else:
                self._eval_instr(stmt, record)

    def _eval_if(self, stmt: If, record: bool) -> None:
        pre_env = dict(self.env)
        pre_penv = dict(self.penv)
        self._refine(stmt.cond, True)
        self._eval_body(stmt.then_body, record)
        then_env, then_penv = self.env, self.penv
        self.env, self.penv = dict(pre_env), dict(pre_penv)
        self._refine(stmt.cond, False)
        self._eval_body(stmt.else_body, record)

        joined: Dict[int, Interval] = {}
        for rid in set(then_env) | set(self.env):
            tv = then_env.get(rid)
            ev = self.env.get(rid)
            if tv is None:
                joined[rid] = ev  # defined only in else: uses are guarded
            elif ev is None:
                joined[rid] = tv
            else:
                joined[rid] = tv.hull(ev)
        self.env = joined
        for rid in set(then_penv) | set(self.penv):
            if self.penv.get(rid) is not then_penv.get(rid):
                self.penv[rid] = None

    def _eval_while(self, stmt: While, record: bool) -> None:
        head = dict(self.env)
        head_penv = dict(self.penv)
        for _ in range(10):
            self.env = dict(head)
            self.penv = dict(head_penv)
            self._eval_body(stmt.cond_block, record=False)
            self._refine(stmt.cond, True)
            self._eval_body(stmt.body, record=False)
            nxt: Dict[int, Interval] = {}
            changed = False
            for rid in set(head) | set(self.env):
                old = head.get(rid)
                new = self.env.get(rid)
                if old is None:
                    nxt[rid] = new
                    changed = True
                elif new is None or old == new:
                    nxt[rid] = old
                else:
                    w = old.widen(new)
                    nxt[rid] = w
                    changed = changed or w != old
            nxt_penv: Dict[int, object] = {}
            for rid in set(head_penv) | set(self.penv):
                if head_penv.get(rid) is self.penv.get(rid):
                    nxt_penv[rid] = head_penv.get(rid)
                else:
                    nxt_penv[rid] = None
                    changed = changed or head_penv.get(rid) is not None
            head, head_penv = nxt, nxt_penv
            if not changed:
                break
        # Final recording pass over the widened fixpoint.
        self.env = dict(head)
        self.penv = dict(head_penv)
        self._eval_body(stmt.cond_block, record)
        exit_env = dict(self.env)
        exit_penv = dict(self.penv)
        self._refine(stmt.cond, True)
        self._eval_body(stmt.body, record)
        # Post-loop state: the loop exits from after the condition block
        # with the condition false.
        self.env = exit_env
        self.penv = exit_penv
        self._refine(stmt.cond, False)

    # -- branch refinement -------------------------------------------------

    _NEGATE = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "le": "gt", "gt": "le"}

    def _refine(self, cond: VReg, polarity: bool) -> None:
        mention = self.penv.get(id(cond))
        if mention is None:
            return
        for op, ra, rb in self._prims(mention[0], polarity):
            a = self._get(ra)
            b = self._get(rb)
            if op == "eq":
                meet = a.clamp_lo(b.lo).clamp_hi(b.hi)
                self.env[id(ra)] = meet
                self.env[id(rb)] = b.clamp_lo(a.lo).clamp_hi(a.hi)
            elif op == "lt":
                self.env[id(ra)] = a.clamp_hi(None if b.hi is None else b.hi - 1)
                self.env[id(rb)] = b.clamp_lo(None if a.lo is None else a.lo + 1)
            elif op == "le":
                self.env[id(ra)] = a.clamp_hi(b.hi)
                self.env[id(rb)] = b.clamp_lo(a.lo)
            elif op == "gt":
                self.env[id(ra)] = a.clamp_lo(None if b.lo is None else b.lo + 1)
                self.env[id(rb)] = b.clamp_hi(None if a.hi is None else a.hi - 1)
            elif op == "ge":
                self.env[id(ra)] = a.clamp_lo(b.lo)
                self.env[id(rb)] = b.clamp_hi(a.hi)
            # "ne" carries no interval fact.

    def _prims(self, tree, polarity: bool) -> List[Tuple[str, VReg, VReg]]:
        """Conjunctive comparison facts implied by a predicate tree."""
        if tree is None:
            return []
        kind = tree[0]
        if kind == "cmp":
            _, op, ra, rb = tree
            if not polarity:
                op = self._NEGATE[op]
            return [(op, ra, rb)]
        if kind == "and":
            if polarity:
                return self._prims(tree[1], True) + self._prims(tree[2], True)
            return []
        if kind == "or":
            if not polarity:
                return self._prims(tree[1], False) + self._prims(tree[2], False)
            return []
        if kind == "not":
            return self._prims(tree[1], not polarity)
        return []

    # -- instructions ------------------------------------------------------

    def _eval_instr(self, instr: Instr, record: bool) -> None:
        for r in (*instr.dests(), *instr.sources()):
            self.regs.setdefault(id(r), r)

        if record:
            self._record(instr)

        if isinstance(instr, Cmp):
            tree = ("cmp", instr.op, instr.a, instr.b)
            mset = frozenset((id(instr.a), id(instr.b)))
            self._assign(instr.dst, Interval.top())
            self.penv[id(instr.dst)] = (tree, mset)
            return
        if isinstance(instr, PredOp):
            a = self.penv.get(id(instr.a))
            b = self.penv.get(id(instr.b)) if instr.b is not None else None
            self._assign(instr.dst, Interval.top())
            if instr.op == "not" and a is not None:
                self.penv[id(instr.dst)] = (("not", a[0]), a[1])
            elif instr.op in ("and", "or") and a is not None and b is not None:
                self.penv[id(instr.dst)] = ((instr.op, a[0], b[0]), a[1] | b[1])
            else:
                self.penv[id(instr.dst)] = None
            return

        dests = instr.dests()
        if not dests:
            return
        dst = dests[0]
        self._assign(dst, self._value(instr, dst))
        if isinstance(instr, Alu) and instr.op == "mov":
            self.penv[id(dst)] = self.penv.get(id(instr.a))
        else:
            self.penv[id(dst)] = None
        if isinstance(instr, Alu) and instr.op == "max" and instr.b is not None:
            # Registered after _assign so the dst-kill does not erase it.
            self.maxinfo[id(dst)] = [
                (id(instr.a), self.versions.get(id(instr.a), 0)),
                (id(instr.b), self.versions.get(id(instr.b), 0)),
            ]

    def _value(self, instr: Instr, dst: VReg) -> Interval:
        if isinstance(instr, Const):
            if dst.dtype in _INT and isinstance(instr.value, (int, bool)):
                return Interval.const(int(instr.value))
            return _default(dst)
        if isinstance(instr, LoadParam):
            return _default(dst)
        if isinstance(instr, SpecialId):
            return self._special(instr)
        if isinstance(instr, Alu):
            return self._alu(instr, dst)
        if isinstance(instr, Select):
            if dst.dtype not in _INT:
                return _default(dst)
            return self._get(instr.a).hull(self._get(instr.b))
        # Loads, atomics, swizzles: opaque values of the dest's type.
        return _default(dst)

    def _special(self, instr: SpecialId) -> Interval:
        kind, dim = instr.kind, instr.dim
        ls = self.local_size
        gs = self.global_size
        if kind == "local_id":
            return Interval(0, ls[dim] - 1) if ls else Interval.nonneg()
        if kind == "local_size":
            return Interval.const(ls[dim]) if ls else Interval(1, None)
        if kind == "global_id":
            return Interval(0, gs[dim] - 1) if gs else Interval.nonneg()
        if kind == "global_size":
            return Interval.const(gs[dim]) if gs else Interval(1, None)
        ng = None
        if ls and gs and ls[dim] and gs[dim] % ls[dim] == 0:
            ng = gs[dim] // ls[dim]
        if kind == "num_groups":
            return Interval.const(ng) if ng else Interval(1, None)
        if kind == "group_id":
            return Interval(0, ng - 1) if ng else Interval.nonneg()
        return Interval.nonneg()

    def _alu(self, instr: Alu, dst: VReg) -> Interval:
        op = instr.op
        if dst.dtype not in _INT and op not in ("mov",):
            return _default(dst)
        a = self._get(instr.a)
        if instr.b is None:
            if op in ("mov", "bitcast_u32", "bitcast_i32"):
                if op != "mov" and instr.a.dtype not in _INT:
                    return _default(dst)
                return a
            if op == "neg":
                return _iv_neg(a)
            if op == "abs":
                if a.lo is not None and a.lo >= 0:
                    return a
                hi_mag = None
                if a.lo is not None and a.hi is not None:
                    hi_mag = max(abs(a.lo), abs(a.hi))
                return Interval(0, hi_mag)
            return _default(dst)
        b = self._get(instr.b)
        if op == "add":
            return _iv_add(a, b)
        if op == "sub":
            out = _iv_sub(a, b)
            if self._is_max_with(instr.a, instr.b):
                # sub(max(x, y), y) == max(x - y, 0).
                out = out.clamp_lo(0)
            return out
        if op == "mul":
            return _iv_mul(a, b)
        if op == "div":
            return _iv_div(a, b)
        if op == "rem":
            return _iv_rem(a, b)
        if op == "min":
            return _iv_minmax(a, b, is_max=False)
        if op == "max":
            return _iv_minmax(a, b, is_max=True)
        if op == "and":
            # Masking re-anchors: the machine result is within the mask.
            masks = []
            if b.is_bounded and b.lo >= 0:
                masks.append(_pow2_cover(b.hi))
            if a.is_bounded and a.lo >= 0:
                masks.append(_pow2_cover(a.hi))
            if masks:
                return Interval(0, min(masks))
            return Interval.top()
        if op in ("or", "xor"):
            if (a.is_bounded and a.lo >= 0 and b.is_bounded and b.lo >= 0):
                return Interval(0, max(_pow2_cover(a.hi), _pow2_cover(b.hi)))
            return Interval.top()
        if op == "shl":
            if b.is_bounded and b.lo == b.hi and 0 <= b.lo <= 31:
                return _iv_mul(a, Interval.const(1 << b.lo))
            return Interval.top()
        if op in ("shr", "ashr"):
            if (
                b.is_bounded and b.lo == b.hi and 0 <= b.lo <= 31
                and a.lo is not None and a.lo >= 0
            ):
                return Interval(a.lo >> b.lo, None if a.hi is None else a.hi >> b.lo)
            return Interval.top()
        return Interval.top()

    # -- the sub(max(x, y), y) special case --------------------------------

    def _is_max_with(self, a: VReg, b: VReg) -> bool:
        for rid, version in self.maxinfo.get(id(a), ()):  # operands of the max
            if rid == id(b) and self.versions.get(rid, 0) == version:
                return True
        return False

    # -- access recording --------------------------------------------------

    def _record(self, instr: Instr) -> None:
        if isinstance(instr, (LoadLocal, StoreLocal)):
            kind = "store_local" if isinstance(instr, StoreLocal) else "load_local"
            self._add_access(instr, kind, instr.lds.name, instr.lds.nelems, instr.index)
        elif isinstance(instr, (LoadGlobal, StoreGlobal)):
            kind = "store_global" if isinstance(instr, StoreGlobal) else "load_global"
            self._add_access(
                instr, kind, instr.buf.name,
                self.buffer_nelems.get(instr.buf.name), instr.index,
            )
        elif isinstance(instr, AtomicGlobal):
            self._add_access(
                instr, "atomic_global", instr.buf.name,
                self.buffer_nelems.get(instr.buf.name), instr.index,
            )

    def _add_access(
        self, instr: Instr, kind: str, target: str,
        nelems: Optional[int], index: VReg,
    ) -> None:
        env = {rid: iv for rid, iv in self.env.items() if not iv.is_top}
        self.accesses.append(
            AccessRange(
                instr=instr,
                kind=kind,
                target=target,
                nelems=nelems,
                index=self._get(index),
                env=env,
            )
        )


def _norm_shape(shape) -> Optional[Tuple[int, int, int]]:
    if shape is None:
        return None
    if isinstance(shape, int):
        shape = (shape,)
    t = tuple(int(x) for x in shape) + (1,) * (3 - len(shape))
    return t[:3]


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class AccessRange:
    """One memory access with its index interval and environment snapshot."""

    instr: Instr
    kind: str                  # load_local / store_local / load_global / ...
    target: str                # allocation or buffer name
    nelems: Optional[int]      # allocation size, when statically known
    index: Interval
    env: Dict[int, Interval] = field(repr=False)

    def interval_of(self, reg: VReg) -> Interval:
        """Interval of any register as of this access point."""
        iv = self.env.get(id(reg))
        return _default(reg) if iv is None else iv


@dataclass
class RangeAnalysis:
    """Value-range analysis results for one kernel."""

    kernel: Kernel
    accesses: List[AccessRange]
    by_instr: Dict[int, AccessRange]

    def access_for(self, instr: Instr) -> Optional[AccessRange]:
        return self.by_instr.get(id(instr))

    def interval_at(self, instr: Instr, reg: VReg) -> Interval:
        """Interval of ``reg`` at the program point of access ``instr``."""
        acc = self.by_instr.get(id(instr))
        return _default(reg) if acc is None else acc.interval_of(reg)


def analyze_ranges(kernel: Kernel) -> RangeAnalysis:
    """Run the interval interpreter over one kernel."""
    ev = _Evaluator(kernel)
    accesses = ev.run()
    return RangeAnalysis(
        kernel=kernel,
        accesses=accesses,
        by_instr={id(a.instr): a for a in accesses},
    )


# ---------------------------------------------------------------------------
# Fault-transfer widths (logical-masking proofs)
# ---------------------------------------------------------------------------

#: A corrupted value whose downstream influence is at most this many bits
#: is treated as logically masked (not-ACE) by the vulnerability analysis:
#: it matches the width of a hardware-masked shift count, the narrowest
#: structure the paper's SoR argument ever leaves unprotected.
MASK_BITS = 5


def _popcount32(v: int) -> int:
    return bin(v & 0xFFFFFFFF).count("1")


def _const_arm(reg: VReg, const_of: Dict[int, int]) -> Optional[int]:
    v = const_of.get(id(reg))
    return v if isinstance(v, int) and v >= 0 else None


def _clamp_width(bound: int, arm: int) -> int:
    return max(bound, arm).bit_length()


def fault_transfer_width(
    instr: Instr,
    src: VReg,
    const_of: Dict[int, int],
    pred_defs: Optional[Dict[int, Cmp]] = None,
) -> int:
    """Bits of ``instr``'s result a corrupted ``src`` operand can influence.

    Returns an upper bound in ``0..32``.  ``const_of`` maps ``id(reg)`` of
    single-definition registers to their known integer constant;
    ``pred_defs`` maps ``id(pred reg)`` to its unique defining :class:`Cmp`.
    The proved narrowings are exactly the paper's logical-masking idioms:

    * ``and`` with a constant mask — popcount of the mask;
    * ``min`` with a non-negative constant ``C`` — ``C.bit_length()``
      (the corrupted value can only lower the result or pin it at ``C``);
    * ``rem`` by a constant divisor ``C > 0`` on the dividend side —
      ``(C - 1).bit_length()``;
    * the *count* operand of a shift — the machine reads 5 bits;
    * compare-then-clamp ``Select`` idioms (``p = lt(x, K); select(p, x,
      K)`` and its ``gt``/``ge`` mirror), for both the data operand and
      the predicate operand — flipping either still yields a value
      bounded by the clamp constants.

    Everything else conservatively transfers the full 32 bits.
    """
    pred_defs = pred_defs or {}
    if isinstance(instr, Alu) and instr.b is not None:
        op = instr.op
        other = instr.b if instr.a is src else instr.a
        if op == "and":
            mask = const_of.get(id(other))
            if isinstance(mask, int):
                return _popcount32(mask)
        elif op == "min":
            c = _const_arm(other, const_of)
            if c is not None:
                return min(32, c.bit_length())
        elif op == "rem" and instr.a is src:
            c = const_of.get(id(instr.b))
            if isinstance(c, int) and c > 0:
                return min(32, (c - 1).bit_length())
        elif op in ("shl", "shr", "ashr") and instr.b is src and instr.a is not src:
            return MASK_BITS
        return 32
    if isinstance(instr, Select):
        width = _select_clamp_width(instr, src, const_of, pred_defs)
        if width is not None:
            return width
    return 32


def _select_clamp_width(
    instr: Select,
    src: VReg,
    const_of: Dict[int, int],
    pred_defs: Dict[int, Cmp],
) -> Optional[int]:
    """Width through a compare-then-clamp ``Select``, or ``None``."""
    cmp = pred_defs.get(id(instr.pred))
    if cmp is None:
        return None
    # Canonical clamp: p = lt/le(x, K); select(p, x, K') — true keeps x
    # (already bounded by K), false yields the constant arm.
    if cmp.op in ("lt", "le"):
        bound = _const_arm(cmp.b, const_of)
        arm = _const_arm(instr.b, const_of)
        if bound is not None and arm is not None and cmp.a is instr.a:
            if src is instr.a or src is instr.pred:
                return min(32, _clamp_width(bound, arm))
    # Mirror: p = gt/ge(x, K); select(p, K', x).
    if cmp.op in ("gt", "ge"):
        bound = _const_arm(cmp.b, const_of)
        arm = _const_arm(instr.a, const_of)
        if bound is not None and arm is not None and cmp.a is instr.b:
            if src is instr.b or src is instr.pred:
                return min(32, _clamp_width(bound, arm))
    # Degenerate: both value arms constant — the pred can only pick
    # between two known-bounded values.
    if src is instr.pred:
        a = _const_arm(instr.a, const_of)
        b = _const_arm(instr.b, const_of)
        if a is not None and b is not None:
            return min(32, max(a, b).bit_length())
    return None
