"""Translation validation of the RMT compiler (Alive2-style).

Instead of trusting the RMT passes, every compile can carry its own
proof: :func:`validate_compile` checks a concrete (original,
transformed) kernel pair against the simulation relation — correct
replica structure, preserved control skeleton, 1:1 effect
correspondence, aligned replica-uniform barriers, output comparison on
every sphere-of-replication exit, forwarded atomic results, and
provably disjoint +LDS replica halves (via the value-range interpreter
of :mod:`repro.compiler.analysis.ranges`).

On violation it emits a structured counterexample witness (the minimal
instruction-pair diff plus the violated obligation).  ``python -m
repro.tv`` certifies the whole kernel/variant/opt-level matrix and
cross-checks the fuzz oracle's planted-bug passes.
"""

from .obligations import (
    FAILED,
    OBLIGATIONS,
    UNPROVEN,
    TvError,
    TvReport,
    TvWitness,
)
from .uniform import PairValueAnalysis
from .validator import validate_compile

__all__ = [
    "FAILED",
    "OBLIGATIONS",
    "UNPROVEN",
    "PairValueAnalysis",
    "TvError",
    "TvReport",
    "TvWitness",
    "validate_compile",
]
