"""Replica-pair value classification for transformed RMT kernels.

The simulation relation of the translation validator needs to know, for
every register of the *transformed* kernel, whether the two redundant
executions (the paired lanes of Intra-Group RMT, or the paired
work-groups of Inter-Group RMT) compute the **same** value in it.  This
module runs a small abstract interpretation over a five-point lattice:

* ``BOT``   — no definition seen yet (fixpoint bottom);
* ``EVEN``  — same value in both replicas, and provably even (the
  doubled launch-geometry intrinsics: ``local_size(0)`` under intra,
  ``num_groups(0)``/``global_size(0)`` under inter);
* ``UNI``   — same value in both replicas ("pair-free");
* ``RAW``   — the raw replica-identity source whose low bit separates
  the pair (``global_id(0)``/``local_id(0)`` under intra, the ticket
  broadcast under inter): replica values differ by exactly 1;
* ``PAR``   — the parity bit of a RAW value (or a predicate derived
  from it): the producer/consumer selector;
* ``TAINT`` — may differ between replicas in an unstructured way.

The transfer functions encode how the RMT prologue launders RAW back
into UNI: ``raw >> 1`` merges the pair (both lanes map to the same
virtual id) and ``raw & 1`` extracts the parity selector, while
``even >> 1`` and ``even & 1`` stay uniform.  Values read through the
communication channels (``__rmt_`` LDS buffers, swizzles, ``__rmt_comm``
atomics) are produced by one replica and observed by both, so they
classify UNI; likewise user LDS reads (replicated-and-disjoint under
+LDS, validated-before-store under −LDS) and global loads at pair-free
indices return pair-identical data.

A guard context whose conditions are all pair-free ("PFREE") encloses
code that both replicas execute identically — the property the
replica-completeness and barrier-alignment obligations check.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ...ir.core import (
    Alu,
    AtomicGlobal,
    Cmp,
    Const,
    Instr,
    Kernel,
    LoadGlobal,
    LoadLocal,
    LoadParam,
    PredOp,
    Select,
    SpecialId,
    Swizzle,
    VReg,
    walk_instrs,
)
from ..lint.sor_coverage import _COPY_OPS, _Defs

_RMT_PREFIX = "__rmt_"
_COMM_PREFIX = "__rmt_comm"
_BCAST_LDS = "__rmt_gid_bcast"

BOT, EVEN, UNI, RAW, PAR, TAINT = range(6)

CLASS_NAMES = {
    BOT: "bot", EVEN: "even", UNI: "uni",
    RAW: "raw", PAR: "par", TAINT: "taint",
}


def join(x: int, y: int) -> int:
    if x == y:
        return x
    if x == BOT:
        return y
    if y == BOT:
        return x
    if {x, y} <= {EVEN, UNI}:
        return UNI
    return TAINT


def _pair_free(c: int) -> bool:
    return c in (BOT, EVEN, UNI)


class PairValueAnalysis:
    """Flow-insensitive fixpoint over the transformed kernel."""

    def __init__(self, kernel: Kernel, flavor: str, defs: Optional[_Defs] = None):
        if flavor not in ("intra", "inter"):
            raise ValueError(f"unknown RMT flavor {flavor!r}")
        self.kernel = kernel
        self.flavor = flavor
        self.defs = defs if defs is not None else _Defs(kernel)
        self.cls: Dict[int, int] = {}
        self._run()

    # -- queries -----------------------------------------------------------

    def of(self, reg: VReg) -> int:
        return self.cls.get(id(reg), BOT)

    def pair_free(self, reg: VReg) -> bool:
        return _pair_free(self.of(reg))

    def guards_pair_free(self, guards: Iterable[Tuple[VReg, str]]) -> bool:
        return all(self.pair_free(reg) for reg, _kind in guards)

    # -- fixpoint ----------------------------------------------------------

    def _run(self) -> None:
        for _ in range(50):
            changed = False
            for instr in walk_instrs(self.kernel.body):
                dests = instr.dests()
                if not dests:
                    continue
                c = self._transfer(instr)
                for dst in dests:
                    old = self.cls.get(id(dst), BOT)
                    new = join(old, c)
                    if new != old:
                        self.cls[id(dst)] = new
                        changed = True
            if not changed:
                break

    # -- transfer functions ------------------------------------------------

    def _transfer(self, instr: Instr) -> int:
        if isinstance(instr, (Const, LoadParam)):
            return UNI
        if isinstance(instr, SpecialId):
            return self._special(instr)
        if isinstance(instr, Swizzle):
            # The swizzle reads the partner lane's copy: a channel value,
            # observed identically by both replicas of the pair.
            return UNI
        if isinstance(instr, LoadLocal):
            if self.flavor == "inter" and instr.lds.name == _BCAST_LDS:
                return RAW  # the group's ticket
            return UNI
        if isinstance(instr, LoadGlobal):
            c = self.of(instr.index)
            if c == BOT:
                return BOT
            return UNI if _pair_free(c) else TAINT
        if isinstance(instr, AtomicGlobal):
            name = instr.buf.name
            if name.startswith(_COMM_PREFIX):
                return UNI  # channel readback
            # __rmt_counter / __rmt_flag values (tickets, handshakes) and
            # user atomic results are ordering-dependent.
            return TAINT
        if isinstance(instr, Cmp):
            return self._boolean(self.of(instr.a), self.of(instr.b))
        if isinstance(instr, PredOp):
            a = self.of(instr.a)
            if instr.op == "not":
                return a
            return self._boolean(a, self.of(instr.b))
        if isinstance(instr, Select):
            cs = [self.of(instr.pred), self.of(instr.a), self.of(instr.b)]
            if BOT in cs:
                return BOT
            return UNI if all(_pair_free(c) for c in cs) else TAINT
        if isinstance(instr, Alu):
            return self._alu(instr)
        return TAINT

    def _special(self, instr: SpecialId) -> int:
        kind, dim = instr.kind, instr.dim
        if self.flavor == "intra":
            if dim == 0 and kind in ("global_id", "local_id"):
                return RAW
            if dim == 0 and kind in ("global_size", "local_size"):
                return EVEN
            return UNI
        # inter
        if dim == 0 and kind in ("num_groups", "global_size"):
            return EVEN
        if kind in ("local_id", "local_size"):
            return UNI
        if kind in ("global_id", "group_id"):
            # The pass virtualizes these from the ticket; a raw read left
            # in the kernel would differ between the paired groups.
            return TAINT
        return UNI

    @staticmethod
    def _boolean(a: int, b: int) -> int:
        if a == BOT or b == BOT:
            return BOT
        if a == TAINT or b == TAINT:
            return TAINT
        if _pair_free(a) and _pair_free(b):
            return UNI
        return PAR

    def _alu(self, instr: Alu) -> int:
        a = self.of(instr.a)
        if instr.b is None:
            if a == BOT:
                return BOT
            if instr.op in _COPY_OPS:
                return a
            return UNI if _pair_free(a) else TAINT
        b = self.of(instr.b)
        if a == BOT or b == BOT:
            return BOT
        if instr.op == "and":
            for x, x_cls, other in (
                (instr.a, a, instr.b), (instr.b, b, instr.a),
            ):
                if self.defs.const_value(other) == 1:
                    if x_cls == RAW:
                        return PAR       # parity extraction
                    if x_cls == EVEN:
                        return UNI       # low bit of an even value is 0
                    if x_cls == PAR:
                        return PAR
                    return UNI if _pair_free(x_cls) else TAINT
        if instr.op == "shr" and self.defs.const_value(instr.b) == 1:
            if a in (RAW, EVEN):
                return UNI  # 2k and 2k+1 both map to k; even/2 is exact
            return UNI if _pair_free(a) else TAINT
        if a == TAINT or b == TAINT:
            return TAINT
        if _pair_free(a) and _pair_free(b):
            return UNI
        return TAINT
