"""Proof obligations, witnesses and reports of the translation validator.

The validator does not re-prove the RMT transformation correct in
general; it discharges, for one concrete (original, transformed) kernel
pair, the finite list of obligations that together imply the simulation
relation of DESIGN.md: the transformed kernel runs two replicas of the
original computation (or one with result forwarding, for constructs a
single replica must execute), both replicas follow the original control
skeleton, every sphere-of-replication exit is compared before it
retires, barriers stay aligned and replica-uniform, and duplicated LDS
halves never overlap.

Each obligation ends in one of four statuses:

* ``proved``   — discharged;
* ``failed``   — a concrete counterexample **witness** was found: the
  transformed kernel provably violates the relation (a planted or real
  miscompile);
* ``unproven`` — the checker could not complete the proof (usually an
  interval the range analysis cannot bound).  Not a miscompile verdict,
  but the compile is not *certified* either — ``python -m repro.tv``
  and the CI gate treat unproven as failure;
* ``skipped``  — not applicable to this mode (e.g. replica obligations
  on an identity compile).

``TvError`` is raised (by ``validate_compile(raise_on_failure=True)``)
only for ``failed`` witnesses, so range-analysis imprecision can never
reject a correct compile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...ir.verify import VerificationError

#: Witness statuses.
FAILED = "failed"
UNPROVEN = "unproven"

#: The obligation list, in checking order.
OBLIGATIONS = (
    "metadata",
    "control-skeleton",
    "effect-correspondence",
    "barrier-alignment",
    "output-comparison",
    "atomic-forwarding",
    "replica-completeness",
    "lds-disjointness",
)


@dataclass(frozen=True)
class TvWitness:
    """One violated (or undischargeable) obligation, pinned to code.

    ``loc`` points into the transformed kernel; ``original_loc`` (when
    the obligation relates a pair of instructions) points at the
    original-kernel instruction the transformed one failed to simulate —
    together they form the minimal instruction-pair diff.
    """

    obligation: str
    status: str              # FAILED or UNPROVEN
    kernel: str              # transformed kernel name
    loc: str
    message: str
    original_loc: str = ""

    def __str__(self) -> str:
        pair = f" (original @ {self.original_loc})" if self.original_loc else ""
        return (f"{self.status}: [{self.obligation}] {self.kernel} @ "
                f"{self.loc}{pair}: {self.message}")

    def to_json(self) -> Dict[str, str]:
        return {
            "obligation": self.obligation,
            "status": self.status,
            "kernel": self.kernel,
            "loc": self.loc,
            "message": self.message,
            "original_loc": self.original_loc,
        }


@dataclass
class TvReport:
    """Outcome of validating one compile."""

    original: str
    transformed: str
    variant: Optional[str]
    mode: str                                  # 'identity' | 'intra' | 'inter'
    obligations: Dict[str, str] = field(default_factory=dict)
    witnesses: List[TvWitness] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Certified: every obligation proved (or skipped), no witnesses."""
        return not self.witnesses

    @property
    def failures(self) -> List[TvWitness]:
        return [w for w in self.witnesses if w.status == FAILED]

    @property
    def unproven(self) -> List[TvWitness]:
        return [w for w in self.witnesses if w.status == UNPROVEN]

    def to_json(self) -> Dict:
        return {
            "original": self.original,
            "transformed": self.transformed,
            "variant": self.variant,
            "mode": self.mode,
            "ok": self.ok,
            "obligations": dict(self.obligations),
            "witnesses": [w.to_json() for w in self.witnesses],
        }


class TvError(VerificationError):
    """A compile failed translation validation with a concrete witness.

    Subclasses :class:`VerificationError` so callers that treat
    verification failures as compile failures (the fuzz oracle, the
    harness) handle statically-rejected miscompiles the same way.  The
    full report is on ``.report``.
    """

    def __init__(self, report: TvReport):
        self.report = report
        failures = report.failures
        shown = "; ".join(str(w) for w in failures[:5])
        extra = f" (+{len(failures) - 5} more)" if len(failures) > 5 else ""
        super().__init__(
            f"translation validation of {report.transformed!r} (from "
            f"{report.original!r}) failed {len(failures)} obligation "
            f"witness(es): {shown}{extra}",
            errors=[str(w) for w in failures],
        )
