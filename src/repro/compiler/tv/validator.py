"""Per-compile translation validation of the RMT transformations.

``validate_compile(original, transformed)`` discharges the obligation
list of :mod:`repro.compiler.tv.obligations` for one concrete kernel
pair, in the style of Alive2: rather than trusting the pass, every
compile carries its own proof.  The checks are purely structural and
static — no execution — and build on three facts about this pipeline:

* the pass manager clones statements but **shares register objects**
  between the original and transformed kernels, and the cleanup
  optimizer rewrites definitions (never uses), so a transformed operand
  that descends from original computation is *literally* an original
  register object reachable through a transformed-side copy chain;
* the RMT passes re-emit sphere-of-replication exits (stores, atomics)
  in original program order, so user effects correspond 1:1 by walk
  position;
* replica-divergent values are only ever derived from the parity of the
  replica-identity source, which the pair-value lattice of
  :mod:`repro.compiler.tv.uniform` tracks precisely.

Obligations that hinge on interval reasoning (+LDS disjointness) lean on
:mod:`repro.compiler.analysis.ranges`; when an index cannot be bounded
the obligation degrades to ``unproven`` — never to a spurious rejection.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from ...ir.core import (
    Alu,
    AtomicGlobal,
    Barrier,
    If,
    Instr,
    Kernel,
    LoadLocal,
    ReportError,
    Stmt,
    StoreGlobal,
    StoreLocal,
    VReg,
    While,
    walk_instrs,
)
from ..lint.engine import LintContext
from ..lint.diagnostics import ERROR
from ..lint.sor_coverage import (
    _COPY_OPS,
    _Defs,
    _has_replica_offset,
    check_sor_coverage,
)
from .obligations import FAILED, OBLIGATIONS, UNPROVEN, TvError, TvReport, TvWitness
from .uniform import PAR, TAINT, PairValueAnalysis

_RMT_PREFIX = "__rmt_"

#: What each harness variant must have produced (flavor, include_lds,
#: fast_comm); ``None`` entries are unconstrained, a ``None`` value means
#: the variant performs no RMT transformation at all.
_VARIANT_EXPECT: Dict[str, Optional[Tuple]] = {
    "original": None,
    "intra+lds": ("intra", True, False),
    "intra-lds": ("intra", False, False),
    "intra+lds_fast": ("intra", True, True),
    "intra-lds_fast": ("intra", False, True),
    "inter": ("inter", None, None),
}

#: Guard context: innermost-last tuple of (condition register, "if" |
#: "while").  A while condition guards both its cond_block and body —
#: replicas disagreeing on it would disagree on iteration *count*.
Guards = Tuple[Tuple[VReg, str], ...]


def _norm_shape(value) -> Optional[Tuple[int, int, int]]:
    if value is None:
        return None
    if isinstance(value, int):
        value = (value, 1, 1)
    v = tuple(int(x) for x in value) + (1, 1)
    return v[:3]


def _describe(instr: Instr) -> str:
    if isinstance(instr, StoreGlobal):
        return f"store_global {instr.buf.name}"
    if isinstance(instr, AtomicGlobal):
        return f"atomic_{instr.op} {instr.buf.name}"
    if isinstance(instr, StoreLocal):
        return f"store_local {instr.lds.name}"
    if isinstance(instr, LoadLocal):
        return f"load_local {instr.lds.name}"
    if isinstance(instr, ReportError):
        return f"report_error({instr.code})"
    if isinstance(instr, Barrier):
        return "barrier"
    return type(instr).__name__.lower()


class _Shape:
    """Program-order skeleton of one kernel: the ordered barrier/effect
    stream, the control conditions, and every leaf instruction with its
    guard context."""

    def __init__(self, kernel: Kernel, identity: bool):
        self.events: List[Tuple[str, Instr, Guards]] = []  # 'barrier'|'effect'
        self.conds: List[Tuple[VReg, str]] = []
        self.leaves: List[Tuple[Instr, Guards]] = []
        self.guards_of: Dict[int, Guards] = {}
        self._identity = identity
        self._walk(kernel.body, ())

    def _walk(self, body: Sequence[Stmt], guards: Guards) -> None:
        for stmt in body:
            if isinstance(stmt, If):
                self.conds.append((stmt.cond, "if"))
                inner = guards + ((stmt.cond, "if"),)
                self._walk(stmt.then_body, inner)
                self._walk(stmt.else_body, inner)
            elif isinstance(stmt, While):
                self.conds.append((stmt.cond, "while"))
                inner = guards + ((stmt.cond, "while"),)
                self._walk(stmt.cond_block, inner)
                self._walk(stmt.body, inner)
            else:
                self.guards_of[id(stmt)] = guards
                self.leaves.append((stmt, guards))
                if isinstance(stmt, Barrier):
                    self.events.append(("barrier", stmt, guards))
                elif self._is_user_effect(stmt):
                    self.events.append(("effect", stmt, guards))

    def _is_user_effect(self, stmt: Instr) -> bool:
        if isinstance(stmt, (StoreGlobal, AtomicGlobal)):
            return not stmt.buf.name.startswith(_RMT_PREFIX)
        if isinstance(stmt, StoreLocal):
            return not stmt.lds.name.startswith(_RMT_PREFIX)
        if isinstance(stmt, ReportError):
            # Pass-inserted mismatch handlers are legitimate new
            # report_errors under RMT; under an identity compile any new
            # one is a planted cry-wolf.
            return self._identity
        return False

    @property
    def effects(self) -> List[Tuple[Instr, Guards]]:
        return [(i, g) for kind, i, g in self.events if kind == "effect"]


class _Validator:
    def __init__(
        self,
        original: Kernel,
        transformed: Kernel,
        variant: Optional[str],
    ):
        self.original = original
        self.transformed = transformed
        self.variant = variant
        self.ctxO = LintContext(original)
        self.ctxT = LintContext(transformed)
        self.rmt = transformed.metadata.get("rmt") or None
        self.mode = self.rmt.get("flavor") if self.rmt else "identity"
        self.include_lds = bool(self.rmt.get("include_lds")) if self.rmt else False
        self.defsO = _Defs(original)
        self.defsT = _Defs(transformed)
        self.orig_regs = self._collect_orig_regs()
        identity = self.mode == "identity"
        self.shapeO = _Shape(original, identity)
        self.shapeT = _Shape(transformed, identity)
        self.pairs: Optional[PairValueAnalysis] = None
        if self.mode in ("intra", "inter"):
            self.pairs = PairValueAnalysis(transformed, self.mode, self.defsT)
        self.report = TvReport(
            original=original.name,
            transformed=transformed.name,
            variant=variant,
            mode=self.mode,
            obligations={name: "proved" for name in OBLIGATIONS},
        )

    def _collect_orig_regs(self) -> set:
        regs = set()
        for instr in walk_instrs(self.original.body):
            for r in instr.dests():
                regs.add(id(r))
            for r in instr.sources():
                regs.add(id(r))
        return regs

    # -- witness plumbing ---------------------------------------------------

    def _witness(
        self,
        obligation: str,
        status: str,
        message: str,
        instr: Optional[Instr] = None,
        original: Optional[Instr] = None,
        loc: Optional[str] = None,
    ) -> None:
        self.report.witnesses.append(TvWitness(
            obligation=obligation,
            status=status,
            kernel=self.transformed.name,
            loc=loc if loc is not None else (
                self.ctxT.loc(instr) if instr is not None else "<kernel>"),
            message=message,
            original_loc=self.ctxO.loc(original) if original is not None else "",
        ))
        current = self.report.obligations[obligation]
        if status == FAILED or current == "proved":
            self.report.obligations[obligation] = status

    def _skip(self, obligation: str) -> None:
        self.report.obligations[obligation] = "skipped"

    def _guard_flaw(self, guards: Guards) -> Optional[str]:
        """FAILED if some guard is provably replica-divergent (parity),
        UNPROVEN if some guard cannot be classified, else None."""
        assert self.pairs is not None
        worst = None
        for reg, _kind in guards:
            c = self.pairs.of(reg)
            if c == PAR:
                return FAILED
            if c == TAINT:
                worst = UNPROVEN
        return worst

    # -- anchors ------------------------------------------------------------

    def _anchor_t(self, reg: Optional[VReg]) -> Optional[VReg]:
        """Resolve a transformed-side operand to its original-kernel root:
        strip transformed copy chains down to an original register, then
        follow the *original* definition chain (the optimizer rewrites
        defs, never uses, so this sees through CSE/folding)."""
        if reg is None:
            return None
        cur = reg
        for _ in range(64):
            if id(cur) in self.orig_regs:
                root, _ = self.defsO.resolve(cur)
                return root
            d = self.defsT.single(cur)
            if isinstance(d, Alu) and d.op in _COPY_OPS and d.b is None:
                cur = d.a
                continue
            return None
        return None

    def _anchor_o(self, reg: Optional[VReg]) -> Optional[VReg]:
        if reg is None:
            return None
        root, _ = self.defsO.resolve(reg)
        return root

    # -- the obligations ----------------------------------------------------

    def run(self) -> TvReport:
        self._check_metadata()
        self._check_control_skeleton()
        self._check_effects()
        self._check_barriers()
        self._check_output_comparison()
        self._check_atomic_forwarding()
        self._check_replica_completeness()
        self._check_lds_disjointness()
        return self.report

    # metadata ---------------------------------------------------------------

    def _check_metadata(self) -> None:
        ob = "metadata"
        meta_loc = "<metadata>"
        expect = _VARIANT_EXPECT.get(self.variant) if self.variant else None
        if self.variant in _VARIANT_EXPECT:
            if expect is None and self.rmt is not None:
                self._witness(ob, FAILED, loc=meta_loc, message=(
                    f"variant {self.variant!r} must not transform, but the "
                    "kernel carries metadata['rmt']"))
            if expect is not None:
                if self.rmt is None:
                    self._witness(ob, FAILED, loc=meta_loc, message=(
                        f"variant {self.variant!r} requires an RMT transform "
                        "but the kernel carries no metadata['rmt']"))
                else:
                    flavor, lds, fast = expect
                    if self.rmt.get("flavor") != flavor:
                        self._witness(ob, FAILED, loc=meta_loc, message=(
                            f"variant {self.variant!r} expects flavor "
                            f"{flavor!r}, got {self.rmt.get('flavor')!r}"))
                    if lds is not None and bool(
                            self.rmt.get("include_lds")) is not lds:
                        self._witness(ob, FAILED, loc=meta_loc, message=(
                            f"variant {self.variant!r} expects include_lds="
                            f"{lds}, got {self.rmt.get('include_lds')!r}"))
                    if fast is not None and bool(
                            self.rmt.get("fast_comm")) is not fast:
                        self._witness(ob, FAILED, loc=meta_loc, message=(
                            f"variant {self.variant!r} expects fast_comm="
                            f"{fast}, got {self.rmt.get('fast_comm')!r}"))

        lsO = _norm_shape(self.original.metadata.get("local_size"))
        lsT = _norm_shape(self.transformed.metadata.get("local_size"))
        gsO = _norm_shape(self.original.metadata.get("global_size"))
        gsT = _norm_shape(self.transformed.metadata.get("global_size"))
        if self.mode == "intra":
            if lsO is not None:
                want = (lsO[0] * 2, lsO[1], lsO[2])
                if lsT != want:
                    self._witness(ob, FAILED, loc=meta_loc, message=(
                        "Intra-Group RMT must double local_size along dim 0: "
                        f"expected {want}, got {lsT}"))
            if gsO is not None:
                want = (gsO[0] * 2, gsO[1], gsO[2])
                if gsT != want:
                    self._witness(ob, FAILED, loc=meta_loc, message=(
                        "Intra-Group RMT must double global_size along dim 0: "
                        f"expected {want}, got {gsT}"))
        elif self.mode == "inter":
            if lsO is not None and lsT != lsO:
                self._witness(ob, FAILED, loc=meta_loc, message=(
                    "Inter-Group RMT must leave local_size unchanged: "
                    f"expected {lsO}, got {lsT}"))
            if gsO is not None:
                want = (gsO[0] * 2, gsO[1], gsO[2])
                if gsT != want:
                    self._witness(ob, FAILED, loc=meta_loc, message=(
                        "Inter-Group RMT must double global_size along dim 0 "
                        f"(doubled groups): expected {want}, got {gsT}"))
        else:
            if lsT != lsO:
                self._witness(ob, FAILED, loc=meta_loc, message=(
                    f"identity compile changed local_size: {lsO} -> {lsT}"))
            if gsT != gsO:
                self._witness(ob, FAILED, loc=meta_loc, message=(
                    f"identity compile changed global_size: {gsO} -> {gsT}"))

    # control skeleton -------------------------------------------------------

    def _cond_loc(self, reg: VReg) -> Optional[Instr]:
        return self.defsT.single(reg)

    def _check_control_skeleton(self) -> None:
        ob = "control-skeleton"
        o_counts = Counter(id(reg) for reg, _ in self.shapeO.conds)
        t_counts: Counter = Counter()
        for reg, kind in self.shapeT.conds:
            if id(reg) in self.orig_regs:
                t_counts[id(reg)] += 1
                if o_counts[id(reg)] == 0:
                    self._witness(
                        ob, FAILED, instr=self._cond_loc(reg),
                        message=(f"transformed {kind} tests original register "
                                 f"{reg!r}, which guards no control flow in "
                                 "the original kernel"))
                elif t_counts[id(reg)] > o_counts[id(reg)]:
                    self._witness(
                        ob, FAILED, instr=self._cond_loc(reg),
                        message=(f"original condition {reg!r} guards more "
                                 f"{kind}s in the transformed kernel than in "
                                 "the original (duplicated control flow)"))
            elif self.mode == "identity":
                self._witness(
                    ob, FAILED, instr=self._cond_loc(reg),
                    message=(f"identity compile introduced a new {kind} "
                             f"condition {reg!r} absent from the original "
                             "kernel"))

    # effect correspondence --------------------------------------------------

    def _check_effects(self) -> None:
        ob = "effect-correspondence"
        effO = self.shapeO.effects
        effT = self.shapeT.effects
        for i in range(min(len(effO), len(effT))):
            o, _go = effO[i]
            t, _gt = effT[i]
            self._match_effect(ob, o, t)
        if len(effT) > len(effO):
            extra, _ = effT[len(effO)]
            self._witness(ob, FAILED, instr=extra, message=(
                f"transformed kernel has {len(effT) - len(effO)} extra user "
                f"effect(s), first: {_describe(extra)}"))
        elif len(effO) > len(effT):
            missing, _ = effO[len(effT)]
            self._witness(
                ob, FAILED, original=missing, loc="<end>",
                message=(f"transformed kernel dropped {len(effO) - len(effT)} "
                         f"user effect(s), first: {_describe(missing)}"))

    def _match_effect(self, ob: str, o: Instr, t: Instr) -> None:
        if type(o) is not type(t):
            self._witness(ob, FAILED, instr=t, original=o, message=(
                f"effect kind changed: original {_describe(o)}, "
                f"transformed {_describe(t)}"))
            return
        if isinstance(o, StoreGlobal):
            if o.buf.name != t.buf.name:
                self._witness(ob, FAILED, instr=t, original=o, message=(
                    f"store retargeted: {_describe(o)} became {_describe(t)}"))
                return
            self._match_operand(ob, o, t, "index", o.index, t.index)
            self._match_operand(ob, o, t, "value", o.value, t.value)
        elif isinstance(o, AtomicGlobal):
            if o.buf.name != t.buf.name or o.op != t.op:
                self._witness(ob, FAILED, instr=t, original=o, message=(
                    f"atomic changed: {_describe(o)} became {_describe(t)}"))
                return
            self._match_operand(ob, o, t, "index", o.index, t.index)
            self._match_operand(ob, o, t, "value", o.value, t.value)
            if (o.compare is None) != (t.compare is None):
                self._witness(ob, FAILED, instr=t, original=o, message=(
                    f"{_describe(t)}: compare operand "
                    f"{'dropped' if t.compare is None else 'introduced'}"))
            elif o.compare is not None:
                self._match_operand(ob, o, t, "compare", o.compare, t.compare)
        elif isinstance(o, StoreLocal):
            if o.lds.name != t.lds.name:
                self._witness(ob, FAILED, instr=t, original=o, message=(
                    f"local store retargeted: {_describe(o)} became "
                    f"{_describe(t)}"))
                return
            self._match_operand(ob, o, t, "value", o.value, t.value)
            if self.mode == "intra" and self.include_lds:
                self._match_remapped_index(ob, o, t)
            else:
                self._match_operand(ob, o, t, "index", o.index, t.index)
        elif isinstance(o, ReportError):
            if o.code != t.code:
                self._witness(ob, FAILED, instr=t, original=o, message=(
                    f"report_error code changed: {o.code} -> {t.code}"))

    def _match_operand(
        self, ob: str, o: Instr, t: Instr, which: str,
        o_reg: VReg, t_reg: VReg,
    ) -> None:
        want = self._anchor_o(o_reg)
        got = self._anchor_t(t_reg)
        if got is None:
            self._witness(ob, FAILED, instr=t, original=o, message=(
                f"{_describe(t)}: {which} operand {t_reg!r} does not descend "
                "from any original-kernel value (expected "
                f"{want!r} through copies)"))
        elif got is not want:
            self._witness(ob, FAILED, instr=t, original=o, message=(
                f"{_describe(t)}: {which} operand resolves to {got!r}, but "
                f"the original instruction uses {want!r}"))

    def _match_remapped_index(self, ob: str, o: StoreLocal, t: StoreLocal) -> None:
        """+LDS: transformed index must be ``original_index + parity*half``."""
        half = t.lds.nelems // 2
        if not _has_replica_offset(self.defsT, t.index, half, 0):
            self._witness(ob, FAILED, instr=t, original=o, message=(
                f"{_describe(t)}: index lacks the `parity * {half}` replica "
                "offset required under +LDS"))
            return
        base = self._lds_base(t.index, half)
        if base is None:
            self._witness(ob, UNPROVEN, instr=t, original=o, message=(
                f"{_describe(t)}: cannot isolate the replica-offset base of "
                "the remapped index"))
            return
        self._match_operand(ob, o, t, "index base", o.index, base)

    # barrier alignment ------------------------------------------------------

    @staticmethod
    def _event_tag(kind: str, instr: Instr) -> Tuple:
        if kind == "barrier":
            return ("barrier",)
        return ("effect", type(instr).__name__, _describe(instr))

    def _check_barriers(self) -> None:
        ob = "barrier-alignment"
        evO = list(self.shapeO.events)
        evT = list(self.shapeT.events)
        if self.mode == "inter" and evT and evT[0][0] == "barrier":
            # The ticket-broadcast barrier of the prologue: new, but
            # replica-uniform and before any user effect, so harmless.
            evT = evT[1:]
        for i in range(min(len(evO), len(evT))):
            ko, io, _ = evO[i]
            kt, it, _ = evT[i]
            if self._event_tag(ko, io) != self._event_tag(kt, it):
                self._witness(ob, FAILED, instr=it, original=io, message=(
                    "barrier/effect interleaving diverged: original has "
                    f"{_describe(io)} at position {i}, transformed has "
                    f"{_describe(it)}"))
                break
        else:
            if len(evO) != len(evT):
                self._witness(ob, FAILED, loc="<end>", message=(
                    f"barrier/effect stream length changed: {len(evO)} "
                    f"event(s) originally, {len(evT)} after the transform"))
        if self.pairs is not None:
            for kind, instr, guards in self.shapeT.events:
                if kind != "barrier":
                    continue
                flaw = self._guard_flaw(guards)
                if flaw == FAILED:
                    self._witness(ob, FAILED, instr=instr, message=(
                        "barrier is guarded by a replica-divergent (parity) "
                        "condition: the two replicas would not both reach it"))
                elif flaw == UNPROVEN:
                    self._witness(ob, UNPROVEN, instr=instr, message=(
                        "cannot prove both replicas reach this barrier: a "
                        "guard condition has unknown replica parity"))

    # output comparison ------------------------------------------------------

    def _check_output_comparison(self) -> None:
        ob = "output-comparison"
        if self.mode == "identity":
            self._skip(ob)
            return
        for diag in check_sor_coverage(self.ctxT):
            if diag.severity == ERROR:
                self._witness(ob, FAILED, loc=diag.loc, message=diag.message)

    # atomic forwarding ------------------------------------------------------

    def _check_atomic_forwarding(self) -> None:
        ob = "atomic-forwarding"
        if self.mode == "identity":
            self._skip(ob)
            return
        used_in_o = set()
        for instr in walk_instrs(self.original.body):
            for s in instr.sources():
                used_in_o.add(id(s))
        for o, _g in self.shapeO.effects:
            if not isinstance(o, AtomicGlobal) or o.dst is None:
                continue
            if id(o.dst) not in used_in_o:
                continue  # result never observed; DCE may drop forwarding
            defs = self.defsT.by_reg.get(id(o.dst), [])
            if not defs:
                self._witness(ob, UNPROVEN, original=o, loc="<end>", message=(
                    f"result of {_describe(o)} is used by the original kernel "
                    "but never defined in the transformed kernel (forwarding "
                    "eliminated?)"))
                continue
            for d in defs:
                guards = self.shapeT.guards_of.get(id(d), ())
                flaw = self._guard_flaw(guards)
                if flaw == FAILED:
                    self._witness(ob, FAILED, instr=d, original=o, message=(
                        f"forwarded result of {_describe(o)} is defined under "
                        "a replica-divergent guard: one replica would miss it"))
                elif flaw == UNPROVEN:
                    self._witness(ob, UNPROVEN, instr=d, original=o, message=(
                        f"cannot prove both replicas receive the result of "
                        f"{_describe(o)}: a guard has unknown replica parity"))

    # replica completeness ---------------------------------------------------

    def _check_replica_completeness(self) -> None:
        ob = "replica-completeness"
        if self.mode == "identity":
            self._skip(ob)
            return
        partial = bool(self.rmt and self.rmt.get("partial"))
        node_guards = uses_at = None
        if partial:
            node_guards, uses_at = self._node_enclosures()
        for instr, guards in self.shapeT.leaves:
            touched = [d for d in instr.dests() if id(d) in self.orig_regs]
            if not touched:
                continue
            flaw = self._guard_flaw(guards)
            if flaw == FAILED and partial and self._single_replica_ok(
                    instr, touched, node_guards, uses_at):
                continue
            if flaw == FAILED:
                self._witness(ob, FAILED, instr=instr, message=(
                    f"definition of replicated value {touched[0]!r} is "
                    "guarded by a replica-divergent (parity) condition: only "
                    "one replica would compute it"))
            elif flaw == UNPROVEN:
                self._witness(ob, UNPROVEN, instr=instr, message=(
                    f"cannot prove both replicas compute {touched[0]!r}: a "
                    "guard condition has unknown replica parity"))

    def _node_enclosures(self):
        """Node-identity guard chains and per-use enclosures.

        ``Guards`` tuples key by condition *register*, which cannot tell
        two distinct ``If`` statements sharing one condition apart (every
        consumer guard tests the same parity register).  The partial-SoR
        acceptance below needs to know whether a use sits inside one
        specific guard node, so this walk records chains of
        ``(id(node), cond, kind)`` and, for every register, the chain of
        node ids enclosing each of its uses (a control condition counts
        as a use at the node's own position).
        """
        node_guards: Dict[int, Tuple] = {}
        uses_at: Dict[int, List[Tuple[int, ...]]] = {}

        def walk(body: Sequence[Stmt], chain: Tuple) -> None:
            ids = tuple(nid for nid, _cond, _kind in chain)
            for stmt in body:
                if isinstance(stmt, If):
                    uses_at.setdefault(id(stmt.cond), []).append(ids)
                    inner = chain + ((id(stmt), stmt.cond, "if"),)
                    walk(stmt.then_body, inner)
                    walk(stmt.else_body, inner)
                elif isinstance(stmt, While):
                    uses_at.setdefault(id(stmt.cond), []).append(ids)
                    inner = chain + ((id(stmt), stmt.cond, "while"),)
                    walk(stmt.cond_block, inner)
                    walk(stmt.body, inner)
                else:
                    node_guards[id(stmt)] = chain
                    for s in stmt.sources():
                        uses_at.setdefault(id(s), []).append(ids)

        walk(self.transformed.body, ())
        return node_guards, uses_at

    def _single_replica_ok(self, instr, touched, node_guards, uses_at) -> bool:
        """Partial-SoR acceptance for a parity-guarded definition.

        Under a declared partial sphere of replication, the selective
        pass sinks computation feeding only an unprotected exit into
        that exit's consumer guard — a *deliberate* single-replica
        region.  Such a definition is sound iff every parity guard
        above it is an ``If`` (a parity-divergent loop would diverge
        iteration counts) and every use of the defined register stays
        inside that same guard node, so no dual-replica code ever
        observes the single-replica value.
        """
        chain = node_guards.get(id(instr))
        if chain is None or self.pairs is None:
            return False
        par_nodes = [(nid, kind) for nid, cond, kind in chain
                     if self.pairs.of(cond) == PAR]
        if not par_nodes or any(kind != "if" for _nid, kind in par_nodes):
            return False
        for nid, _kind in par_nodes:
            for reg in touched:
                for enclosure in uses_at.get(id(reg), ()):
                    if nid not in enclosure:
                        return False
        return True

    # LDS disjointness -------------------------------------------------------

    def _user_allocs(self, kernel: Kernel) -> Dict[str, int]:
        return {a.name: a.nelems for a in kernel.locals
                if not a.name.startswith(_RMT_PREFIX)}

    def _lds_base(self, index: VReg, half: int) -> Optional[VReg]:
        root, _ = self.defsT.resolve(index)
        d = self.defsT.single(root)
        if isinstance(d, Alu) and d.op == "add" and d.b is not None:
            for off, base in ((d.a, d.b), (d.b, d.a)):
                if self._is_replica_offset_term(off, half):
                    return base
        return None

    def _is_replica_offset_term(self, reg: VReg, half: int) -> bool:
        root, _ = self.defsT.resolve(reg)
        d = self.defsT.single(root)
        if isinstance(d, Alu) and d.op == "mul" and d.b is not None:
            for p, s in ((d.a, d.b), (d.b, d.a)):
                if (self.defsT.is_parity_of_id(p)
                        and self.defsT.const_value(s) == half):
                    return True
        return False

    def _check_lds_disjointness(self) -> None:
        ob = "lds-disjointness"
        allocsO = self._user_allocs(self.original)
        allocsT = self._user_allocs(self.transformed)
        if not (self.mode == "intra" and self.include_lds):
            if allocsT != allocsO:
                self._witness(ob, FAILED, loc="<locals>", message=(
                    f"user LDS allocations changed under {self.mode} "
                    f"(must stay identical): {allocsO} -> {allocsT}"))
            if not allocsO:
                self._skip(ob)
            return

        for name, nelems in allocsT.items():
            want = allocsO.get(name)
            if want is None:
                self._witness(ob, FAILED, loc="<locals>", message=(
                    f"+LDS transform introduced unknown allocation {name!r}"))
            elif nelems != want * 2:
                self._witness(ob, FAILED, loc="<locals>", message=(
                    f"+LDS transform must double allocation {name!r}: "
                    f"expected {want * 2} elements, got {nelems}"))
        for name in allocsO:
            if name not in allocsT:
                self._witness(ob, FAILED, loc="<locals>", message=(
                    f"+LDS transform dropped allocation {name!r}"))

        for instr, _guards in self.shapeT.leaves:
            if not isinstance(instr, (StoreLocal, LoadLocal)):
                continue
            if instr.lds.name.startswith(_RMT_PREFIX):
                continue
            half = instr.lds.nelems // 2
            if not _has_replica_offset(self.defsT, instr.index, half, 0):
                self._witness(ob, FAILED, instr=instr, message=(
                    f"{_describe(instr)}: index lacks the `parity * {half}` "
                    "replica offset, so the two replicas would share one "
                    "copy of the data"))
                continue
            base = self._lds_base(instr.index, half)
            if base is None:
                self._witness(ob, UNPROVEN, instr=instr, message=(
                    f"{_describe(instr)}: cannot isolate the base term of "
                    "the remapped index to bound it"))
                continue
            iv = self.ctxT.ranges.interval_at(instr, base)
            if iv.lo is not None and iv.hi is not None and 0 <= iv.lo and iv.hi < half:
                continue  # base in [0, half): replica halves are disjoint
            if iv.lo is not None and iv.lo >= half:
                self._witness(ob, FAILED, instr=instr, message=(
                    f"{_describe(instr)}: replica base index {iv} lies "
                    f"entirely outside its half [0, {half}): replica 0 "
                    "provably reaches replica 1's copy"))
            else:
                self._witness(ob, UNPROVEN, instr=instr, message=(
                    f"{_describe(instr)}: replica base index {iv} cannot be "
                    f"proved to stay inside [0, {half})"))


def validate_compile(
    original: Kernel,
    transformed: Kernel,
    variant: Optional[str] = None,
    raise_on_failure: bool = True,
) -> TvReport:
    """Statically certify one compile against the simulation relation.

    Returns the full :class:`TvReport`.  With ``raise_on_failure`` (the
    default), a report containing any ``failed`` witness raises
    :class:`TvError`; ``unproven`` witnesses never raise — they mark the
    compile as not-certified (``report.ok`` is False) without rejecting
    it, so analysis imprecision cannot break a correct build.
    """
    report = _Validator(original, transformed, variant).run()
    if raise_on_failure and report.failures:
        raise TvError(report)
    return report
