"""Compiler pass framework.

Mirrors the structure of the paper's toolchain (Section 4): kernels
arrive from the frontend (our builder DSL), optimization/transformation
passes run at the IR layer — where the RMT transformations live — and
analyses annotate the result for the backend (our timing simulator).
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..ir.core import Kernel, Stmt, clone_stmt, walk_instrs
from ..ir.verify import verify_kernel


def clone_kernel(kernel: Kernel) -> Kernel:
    """Deep-copy a kernel (fresh statement objects, shared registers).

    Registers are immutable value handles, so sharing them between the
    original and the clone is safe; statements and the body tree are
    duplicated so passes can mutate freely.
    """
    new = Kernel(
        name=kernel.name,
        params=list(kernel.params),
        locals=list(kernel.locals),
        body=[clone_stmt(s, {}) for s in kernel.body],
        metadata=copy.deepcopy(kernel.metadata),
    )
    # Continue register numbering where the original left off.
    new._name_counter = copy.copy(kernel._name_counter)
    return new


class Pass:
    """Base class for kernel transformation passes."""

    name = "pass"

    def run(self, kernel: Kernel) -> Kernel:
        """Transform and return a kernel (may mutate its argument)."""
        raise NotImplementedError


class PassManager:
    """Runs a pass pipeline with verification between stages.

    With ``lint=True`` the static lint suite (barrier divergence, LDS
    races, definite assignment, RMT SoR coverage) runs once over the
    final kernel as post-pass verification; lint errors raise
    :class:`~repro.compiler.lint.LintError`, a
    :class:`~repro.ir.verify.VerificationError` subclass.
    """

    def __init__(
        self, passes: Sequence[Pass], verify: bool = True, lint: bool = False
    ):
        self.passes = list(passes)
        self.verify = verify
        self.lint = lint

    def run(self, kernel: Kernel) -> Kernel:
        """Clone the input, run every pass, verify after each."""
        result = clone_kernel(kernel)
        if self.verify:
            verify_kernel(result)
        for p in self.passes:
            result = p.run(result)
            if self.verify:
                verify_kernel(result)
        if self.lint:
            from .lint import check_kernel  # lazy: lint imports analyses

            check_kernel(result)
        return result
