"""Compilation pipeline: frontend IR → (optional RMT pass) → backend
annotations.

``compile_kernel`` is the toolchain entry point the benchmarks use.  It
mirrors the paper's three-stage compiler (Section 4): the builder DSL
plays the high-level frontend, the RMT transformation runs at the IR
layer, and the backend annotations (uniformity → scalar-unit placement,
register/LDS footprints → occupancy) feed the timing simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Set

from ..gpu.occupancy import KernelResources
from ..ir.core import Kernel
from ..ir.verify import verify_kernel
from .analysis.resources import estimate_resources
from .analysis.sor import SorReport, analyze_sor
from .analysis.uniformity import UniformityInfo, analyze_uniformity
from .cache import compile_key, resolve_cache
from .pass_manager import Pass, PassManager
from .passes.rmt_common import RmtOptions
from .passes.rmt_inter import InterGroupRmtPass
from .passes.rmt_intra import IntraGroupRmtPass

#: The RMT variants evaluated in the paper, by harness name.
RMT_VARIANTS = (
    "original",
    "intra+lds",
    "intra-lds",
    "intra+lds_fast",
    "intra-lds_fast",
    "inter",
)


def rmt_pass_for(variant: str, communication: bool = True) -> Optional[Pass]:
    """Map a harness variant name to its transformation pass."""
    if variant == "original":
        return None
    if variant.startswith("intra"):
        include_lds = "+lds" in variant
        fast = variant.endswith("_fast")
        return IntraGroupRmtPass(
            RmtOptions(include_lds=include_lds, communication=communication,
                       fast_comm=fast)
        )
    if variant == "inter":
        return InterGroupRmtPass(RmtOptions(communication=communication))
    raise ValueError(f"unknown RMT variant {variant!r}")


@dataclass
class CompiledKernel:
    """A kernel plus the backend annotations the simulator consumes."""

    kernel: Kernel
    resources: KernelResources
    uniformity: UniformityInfo
    sor: SorReport
    variant: str

    @property
    def scalar_instrs(self) -> Set[int]:
        return self.uniformity.scalar_instrs

    @property
    def rmt_metadata(self) -> Optional[dict]:
        return self.kernel.metadata.get("rmt")


def _annotate(transformed: Kernel, variant: str) -> CompiledKernel:
    """Backend annotation tail: analyses the simulator consumes.

    Factored out so the compile cache can rebuild process-local
    annotations (the uniformity/SoR sets are ``id()``-based and do not
    survive pickling) for a kernel restored from the disk tier.
    """
    uniformity = analyze_uniformity(transformed)
    resources = estimate_resources(transformed, uniformity)
    sor = analyze_sor(transformed)
    return CompiledKernel(
        kernel=transformed,
        resources=resources,
        uniformity=uniformity,
        sor=sor,
        variant=variant,
    )


def compile_kernel(
    kernel: Kernel,
    variant: str = "original",
    communication: bool = True,
    verify: bool = True,
    optimize: bool = False,
    lint: bool = True,
    validate: Optional[bool] = None,
    rmt_pass: Optional[Pass] = None,
    extra_passes: Sequence[Pass] = (),
    cache=None,
) -> CompiledKernel:
    """Run the pipeline for one kernel/variant pair.

    ``optimize=True`` appends the cleanup pipeline (constant folding,
    CSE, DCE) after the RMT transformation, reducing the transformed
    kernel's register pressure the way a production backend would.

    ``lint=False`` opts out of the post-pass static lint suite (see
    :mod:`repro.compiler.lint`); lint also requires ``verify``.

    ``validate`` controls per-compile translation validation (see
    :mod:`repro.compiler.tv`): the transformed kernel is checked against
    the original under the RMT simulation relation, and any *failed*
    proof obligation raises :class:`~repro.compiler.tv.TvError` with a
    counterexample witness.  The default (``None``) follows ``lint and
    verify``; pass ``validate=False`` to opt out, or ``validate=True``
    to validate even with lint disabled.

    ``rmt_pass`` substitutes a custom transformation for the variant's
    stock pass, and ``extra_passes`` run right after it (before the
    cleanup pipeline).  Both exist for differential testing — the fuzz
    oracle uses them to plant deliberately broken passes and prove it
    can detect them (see :mod:`repro.fuzz.oracle`).

    ``cache`` selects the compile cache (see
    :mod:`repro.compiler.cache`): ``None`` uses the process-wide
    default, ``False`` bypasses caching for this call, and an explicit
    :class:`~repro.compiler.cache.CompileCache` is used as-is.  The key
    covers the kernel's structural fingerprint and every argument above,
    so a hit is exactly the compile that would have run; a compile whose
    inputs cannot be canonically fingerprinted (an exotic planted pass)
    silently bypasses the cache.
    """
    from .passes.optimize import (
        CommonSubexpressionPass,
        ConstantFoldingPass,
        DeadCodeEliminationPass,
    )

    if validate is None:
        validate = lint and verify

    cache_obj = resolve_cache(cache)
    key = None
    if cache_obj is not None:
        key = compile_key(
            kernel, variant=variant, communication=communication,
            verify=verify, optimize=optimize, lint=lint, validate=validate,
            rmt_pass=rmt_pass, extra_passes=extra_passes,
        )
        if key is None:
            cache_obj.stats.uncacheable += 1
        else:
            hit = cache_obj.lookup(key, _annotate)
            if hit is not None:
                return hit

    passes = []
    p = rmt_pass if rmt_pass is not None else rmt_pass_for(
        variant, communication=communication)
    if p is not None:
        passes.append(p)
    passes.extend(extra_passes)
    if optimize:
        passes.extend([
            ConstantFoldingPass(),
            CommonSubexpressionPass(),
            DeadCodeEliminationPass(),
        ])
    pm = PassManager(passes, verify=verify, lint=lint and verify)
    transformed = pm.run(kernel)
    if validate:
        from .tv import validate_compile  # lazy: tv imports the lint suite

        validate_compile(kernel, transformed, variant=variant)
    compiled = _annotate(transformed, variant)
    if cache_obj is not None and key is not None:
        cache_obj.store(key, compiled)
    return compiled
