"""Command-line front end for the static lint suite.

``python -m repro.lint`` compiles every suite kernel under every RMT
variant and reports the diagnostics from
:mod:`repro.compiler.lint` with kernel/statement locations.  Exit
status is non-zero when any error-severity diagnostic is produced, so
CI can gate on it.  ``--json`` emits one machine-readable document
using the same per-diagnostic serialization as ``python -m repro.tv``.

``--vuln`` switches to the static-vulnerability report: instead of
linting transformed kernels, every *untransformed* suite kernel runs
the ACE/AVF analysis of
:mod:`repro.compiler.analysis.vulnerability` and the per-def-site
priority ranking is printed (text) or serialized (``--json``).  The
output is deterministic across runs and processes, so CI can diff it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from ..compiler.lint import ERROR, Diagnostic, checker_names, run_lints
from ..compiler.pipeline import RMT_VARIANTS, compile_kernel
from ..ir.verify import VerificationError
from ..kernels.suite import all_abbrevs, make_benchmark


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Run the static lint suite over benchmark kernels.",
    )
    parser.add_argument(
        "--scale", choices=("small", "paper"), default="small",
        help="benchmark problem sizes (default: small)",
    )
    parser.add_argument(
        "--kernels", default=None,
        help="comma-separated benchmark abbreviations (default: all)",
    )
    parser.add_argument(
        "--variants", default=None,
        help=f"comma-separated RMT variants (default: all of "
             f"{', '.join(RMT_VARIANTS)})",
    )
    parser.add_argument(
        "--checkers", default=None,
        help=f"comma-separated checkers (default: all of "
             f"{', '.join(checker_names())})",
    )
    parser.add_argument(
        "--optimize", action="store_true",
        help="also run the cleanup pipeline (fold/CSE/DCE) before linting",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as errors for the exit status",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON document instead of text",
    )
    parser.add_argument(
        "--vuln", action="store_true",
        help="report the static ACE/AVF vulnerability ranking of each "
             "untransformed suite kernel instead of linting variants",
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="with --vuln (text mode): show the N highest-priority "
             "def sites per kernel (default: 10)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only diagnostics and the summary line",
    )
    return parser.parse_args(argv)


def _split(arg: Optional[str]) -> Optional[List[str]]:
    if arg is None:
        return None
    return [x.strip() for x in arg.split(",") if x.strip()]


def _vuln_main(args: argparse.Namespace, abbrevs: List[str]) -> int:
    from ..compiler.analysis.vulnerability import analyze_vulnerability

    docs: List[Dict] = []
    for abbrev in abbrevs:
        try:
            kernel = make_benchmark(abbrev, scale=args.scale).build()
        except KeyError as exc:
            print(f"unknown kernel {abbrev!r}: {exc}", file=sys.stderr)
            return 2
        report = analyze_vulnerability(kernel)
        doc = report.to_json()
        doc["abbrev"] = abbrev
        docs.append(doc)
        if not args.json:
            by_cls: Dict[str, int] = {}
            for e in report.entries:
                by_cls[e.classification] = by_cls.get(e.classification, 0) + 1
            print(f"{abbrev} ({kernel.name}): {len(report.entries)} def "
                  f"site(s), {len(report.exits)} SoR exit(s), "
                  f"total priority {report.total_priority:.2f} "
                  f"[{' '.join(f'{k}={v}' for k, v in sorted(by_cls.items()))}]")
            if not args.quiet:
                for e in report.ranked()[:max(args.top, 0)]:
                    print(f"  {e.priority:10.2f}  b{e.bucket}  {e.reg:>12} "
                          f"{e.op:<16} {e.classification:<6} w={e.width:<2} "
                          f"x={e.exposure:<4} {e.path}")
    if args.json:
        print(json.dumps({"vuln": docs}, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    abbrevs = _split(args.kernels) or all_abbrevs()
    if args.vuln:
        return _vuln_main(args, abbrevs)
    variants = _split(args.variants) or list(RMT_VARIANTS)
    checkers = _split(args.checkers)

    bad = [v for v in variants if v not in RMT_VARIANTS]
    if bad:
        print(f"unknown variant(s): {', '.join(bad)}", file=sys.stderr)
        return 2
    if checkers is not None:
        known = set(checker_names())
        bad = [c for c in checkers if c not in known]
        if bad:
            print(
                f"unknown checker(s): {', '.join(bad)}; "
                f"have {', '.join(checker_names())}",
                file=sys.stderr,
            )
            return 2

    diagnostics: List[Diagnostic] = []
    rows: List[Dict] = []
    failures = 0
    checked = 0
    for abbrev in abbrevs:
        try:
            kernel = make_benchmark(abbrev, scale=args.scale).build()
        except KeyError as exc:
            print(f"unknown kernel {abbrev!r}: {exc}", file=sys.stderr)
            return 2
        for variant in variants:
            checked += 1
            target = f"{abbrev}/{variant}"
            try:
                # Lint is decoupled from compilation here so one failing
                # kernel still reports every diagnostic it has.
                compiled = compile_kernel(
                    kernel, variant, optimize=args.optimize, lint=False
                )
            except VerificationError as exc:
                failures += 1
                rows.append({"target": target, "ok": False,
                             "error": str(exc), "diagnostics": []})
                if not args.json:
                    print(f"{target}: verification failed: {exc}")
                continue
            diags = run_lints(compiled.kernel, checkers)
            diagnostics.extend(diags)
            rows.append({
                "target": target,
                "ok": not any(d.severity == ERROR for d in diags),
                "diagnostics": [d.to_json() for d in diags],
            })
            if not args.json:
                for d in diags:
                    print(f"{target}: {d}")
                if not args.quiet and not diags:
                    print(f"{target}: ok")

    errors = sum(1 for d in diagnostics if d.severity == ERROR)
    warnings_ = len(diagnostics) - errors
    ok = not (errors or failures or (args.strict and warnings_))
    if args.json:
        print(json.dumps({
            "results": rows,
            "summary": {
                "total": checked, "errors": errors, "warnings": warnings_,
                "verification_failures": failures,
            },
            "ok": ok,
        }, indent=2))
    else:
        print(
            f"linted {checked} kernel/variant pair(s): {errors} error(s), "
            f"{warnings_} warning(s), {failures} verification failure(s)"
        )
    return 0 if ok else 1
