"""FastWalshTransform (FWT) — multi-pass global-memory butterfly.

Each of log2(n) passes streams the whole array through global memory
(2 loads + 2 stores per work-item) with trivial compute.  Thoroughly
memory-bound: Intra-Group RMT hides its redundant work behind the
traffic (≤10% overhead), while Inter-Group RMT's per-store global
communication lands on the saturated hierarchy and blows up (9.37x in
the paper).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult


class FastWalshTransform(Benchmark):
    abbrev = "FWT"
    name = "FastWalshTransform"
    description = "log2(n) butterfly passes over global memory; memory-bound"

    def __init__(self, n: int = 65536, local_size: int = 256, seed: int = 7):
        super().__init__(seed)
        if n & (n - 1):
            raise ValueError("n must be a power of two")
        self.n = n
        self.local_size = local_size
        self.data = self.rng.integers(-8, 8, size=n).astype(np.float32)

    def build(self):
        b = KernelBuilder("fast_walsh")
        arr = b.buffer_param("arr", DType.F32)
        step = b.scalar_param("step", DType.U32)

        tid = b.global_id(0)
        group = b.rem(tid, step)
        pair = b.add(b.mul(2, b.sub(tid, group)), group)
        match = b.add(pair, step)
        t1 = b.load(arr, pair)
        t2 = b.load(arr, match)
        b.store(arr, pair, b.add(t1, t2))
        b.store(arr, match, b.sub(t1, t2))
        k = b.finish()
        k.metadata["local_size"] = (self.local_size, 1, 1)
        k.metadata["global_size"] = (self.n // 2, 1, 1)
        k.metadata["buffer_nelems"] = {"arr": self.n}
        return k

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        buf = session.upload("arr", self.data)
        items = self.n // 2
        launches = []
        step = 1
        while step < self.n:
            launches.append(
                session.launch(
                    compiled, items, self.local_size, {"arr": buf},
                    scalars={"step": step},
                    resources=resources, fault_hook=fault_hook,
                )
            )
            step <<= 1
        return BenchResult(
            outputs={"arr": session.download(buf)},
            launches=tuple(launches),
            session=session,
            compiled=compiled,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        data = self.data.astype(np.float64).copy()
        step = 1
        while step < self.n:
            idx = np.arange(self.n // 2)
            group = idx % step
            pair = 2 * (idx - group) + group
            match = pair + step
            t1, t2 = data[pair].copy(), data[match].copy()
            data[pair] = t1 + t2
            data[match] = t1 - t2
            step <<= 1
        return {"arr": data.astype(np.float32)}
