"""DCT (8×8 block discrete cosine transform) — compute- and LDS-bound.

Each 8×8 work-group stages its pixel block and the intermediate product
through the LDS with barriers and computes Z = C·X·Cᵀ.  High VALU *and*
high memory time — the combination the paper calls out for DCT and MM:
"spending time on memory" does not rescue a kernel whose compute units
are also busy, so RMT still costs ~2x.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult

_B = 8


def _dct_matrix() -> np.ndarray:
    c = np.zeros((_B, _B))
    for i in range(_B):
        for j in range(_B):
            a = np.sqrt(1.0 / _B) if i == 0 else np.sqrt(2.0 / _B)
            c[i, j] = a * np.cos((2 * j + 1) * i * np.pi / (2 * _B))
    return c


class Dct(Benchmark):
    abbrev = "DCT"
    name = "DCT"
    description = "8x8 blocked DCT via LDS; compute+LDS-bound"

    def __init__(self, width: int = 128, height: int = 128, seed: int = 7):
        super().__init__(seed)
        if width % _B or height % _B:
            raise ValueError("image dimensions must be multiples of 8")
        self.width = width
        self.height = height
        self.image = self.rng.random(width * height).astype(np.float32)
        self.dct8 = _dct_matrix().astype(np.float32)

    def build(self):
        b = KernelBuilder("dct8x8")
        img = b.buffer_param("img", DType.F32)
        coef = b.buffer_param("coef", DType.F32)
        out = b.buffer_param("out", DType.F32)
        width = b.scalar_param("width", DType.U32)

        block = b.local_alloc("block", DType.F32, _B * _B)
        inter = b.local_alloc("inter", DType.F32, _B * _B)

        gx = b.global_id(0)   # column
        gy = b.global_id(1)   # row
        lx = b.local_id(0)
        ly = b.local_id(1)
        lflat = b.add(b.mul(ly, _B), lx)

        pixel_idx = b.add(b.mul(gy, width), gx)
        b.store_local(block, lflat, b.load(img, pixel_idx))
        b.barrier()

        # Stage 1: Y[i][j] = sum_k X[i][k] * C[j][k]   (thread = (j, i))
        acc = b.var(DType.F32, 0.0, hint="acc")
        for k in range(_B):
            xv = b.load_local(block, b.add(b.mul(ly, _B), k))
            cv = b.load(coef, b.add(b.mul(lx, _B), k))
            b.set(acc, b.add(acc, b.mul(xv, cv)))
        b.store_local(inter, lflat, acc)
        b.barrier()

        # Stage 2: Z[i][j] = sum_k C[i][k] * Y[k][j]   (thread = (j, i))
        acc2 = b.var(DType.F32, 0.0, hint="acc2")
        for k in range(_B):
            yv = b.load_local(inter, b.add(b.mul(k, _B), lx))
            cv = b.load(coef, b.add(b.mul(ly, _B), k))
            b.set(acc2, b.add(acc2, b.mul(yv, cv)))
        b.store(out, pixel_idx, acc2)
        kern = b.finish()
        kern.metadata["local_size"] = (_B, _B, 1)
        kern.metadata["global_size"] = (self.width, self.height, 1)
        npix = self.width * self.height
        kern.metadata["buffer_nelems"] = {
            "img": npix, "coef": _B * _B, "out": npix,
        }
        return kern

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        n = self.width * self.height
        return self.simple_run(
            session, compiled,
            inputs={"img": self.image, "coef": self.dct8.reshape(-1)},
            outputs={"out": (n, np.float32)},
            global_size=(self.width, self.height), local_size=(_B, _B),
            scalars={"width": self.width},
            resources=resources, fault_hook=fault_hook,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        img = self.image.reshape(self.height, self.width).astype(np.float64)
        c = _dct_matrix()
        out = np.zeros_like(img)
        for by in range(0, self.height, _B):
            for bx in range(0, self.width, _B):
                x = img[by:by + _B, bx:bx + _B]
                out[by:by + _B, bx:bx + _B] = c @ x @ c.T
        return {"out": out.astype(np.float32).reshape(-1)}

    def check(self, result, rtol: float = 1e-3, atol: float = 1e-4, ref=None) -> bool:
        return super().check(result, rtol=rtol, atol=atol, ref=ref)
