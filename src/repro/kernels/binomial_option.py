"""BinomialOption (BO) — one option per work-group, LDS-lattice bound.

Each work-group prices one option by rolling a binomial lattice backward
through the LDS, with two barriers per step.  Runtime is dominated by
local-memory accesses, not vector compute or global memory — the paper's
key example of a kernel where Intra-Group−LDS halves the redundant LDS
writes only to pay an equally large per-local-store communication
penalty (Section 6.4), and one of the three long-running power
workloads (Figure 5).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult

_RISK_FREE = 0.02
_VOLATILITY = 0.30


class BinomialOption(Benchmark):
    abbrev = "BO"
    name = "BinomialOption"
    description = "binomial lattice per work-group; LDS/barrier-bound"

    def __init__(self, options: int = 512, local_size: int = 64, seed: int = 7):
        super().__init__(seed)
        self.options = options
        self.local_size = local_size
        self.steps = local_size - 1
        self.rand = self.rng.random(options).astype(np.float32)

    def build(self):
        ls = self.local_size
        steps = self.steps
        b = KernelBuilder("binomial_option")
        rand = b.buffer_param("rand", DType.F32)
        out = b.buffer_param("out", DType.F32)

        call_a = b.local_alloc("call_a", DType.F32, ls)
        call_b = b.local_alloc("call_b", DType.F32, ls)

        group = b.group_id(0)
        lid = b.local_id(0)

        u = b.load(rand, group)
        s = b.add(10.0, b.mul(u, 90.0))
        k = b.add(10.0, b.mul(u, 80.0))
        t = b.add(0.5, b.mul(u, 2.0))

        dt = b.div(t, float(steps))
        vsdt = b.mul(_VOLATILITY, b.sqrt(dt))
        rdt = b.mul(_RISK_FREE, dt)
        erdt = b.exp(rdt)
        df = b.div(1.0, erdt)
        up = b.exp(vsdt)
        down = b.div(1.0, up)
        pu = b.div(b.sub(erdt, down), b.sub(up, down))
        pd = b.sub(1.0, pu)

        # Leaf payoffs: node j holds S * u^j * d^(steps-j).
        j = b.u2f(lid)
        expo = b.mul(vsdt, b.sub(b.mul(2.0, j), float(steps)))
        leaf_price = b.mul(s, b.exp(expo))
        payoff = b.max(b.sub(leaf_price, k), 0.0)
        b.store_local(call_a, lid, payoff)
        b.barrier()

        buffers = (call_a, call_b)
        for i in range(steps, 0, -1):
            src_buf = buffers[(steps - i) % 2]
            dst_buf = buffers[(steps - i + 1) % 2]
            active = b.lt(lid, i)
            with b.if_(active):
                lower = b.load_local(src_buf, lid)
                upper = b.load_local(src_buf, b.add(lid, 1))
                value = b.mul(df, b.add(b.mul(pu, upper), b.mul(pd, lower)))
                b.store_local(dst_buf, lid, value)
            b.barrier()

        first = b.eq(lid, 0)
        with b.if_(first):
            final_buf = buffers[steps % 2]
            b.store(out, group, b.load_local(final_buf, 0))
        kern = b.finish()
        kern.metadata["local_size"] = (ls, 1, 1)
        kern.metadata["global_size"] = (self.options * ls, 1, 1)
        kern.metadata["buffer_nelems"] = {
            "rand": self.options, "out": self.options,
        }
        return kern

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        return self.simple_run(
            session, compiled,
            inputs={"rand": self.rand},
            outputs={"out": (self.options, np.float32)},
            global_size=self.options * self.local_size, local_size=self.local_size,
            resources=resources, fault_hook=fault_hook,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        u = self.rand.astype(np.float64)
        steps = self.steps
        s = 10.0 + u * 90.0
        k = 10.0 + u * 80.0
        t = 0.5 + u * 2.0
        dt = t / steps
        vsdt = _VOLATILITY * np.sqrt(dt)
        erdt = np.exp(_RISK_FREE * dt)
        df = 1.0 / erdt
        up = np.exp(vsdt)
        down = 1.0 / up
        pu = (erdt - down) / (up - down)
        pd = 1.0 - pu

        j = np.arange(steps + 1)[None, :]
        lattice = np.maximum(
            s[:, None] * np.exp(vsdt[:, None] * (2 * j - steps)) - k[:, None],
            0.0,
        )
        for i in range(steps, 0, -1):
            lattice[:, :i] = df[:, None] * (
                pu[:, None] * lattice[:, 1:i + 1] + pd[:, None] * lattice[:, :i]
            )
        return {"out": lattice[:, 0].astype(np.float32)}

    def check(self, result, rtol: float = 1e-3, atol: float = 1e-3, ref=None) -> bool:
        return super().check(result, rtol=rtol, atol=atol, ref=ref)
