"""SobelFilter (SF) — 3×3 gradient filter; memory-bound image kernel.

Like SC, neighbouring work-items share most of their reads, which keeps
RMT cheap: redundant pairs coalesce (Intra) and redundant groups warm
the caches for each other (Inter "slipstreaming").
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult


class SobelFilter(Benchmark):
    abbrev = "SF"
    name = "SobelFilter"
    description = "3x3 Sobel gradient; memory-bound, shared-read-heavy"

    def __init__(self, width: int = 256, height: int = 128, local_size: int = 256, seed: int = 7):
        super().__init__(seed)
        self.width = width
        self.height = height
        self.local_size = local_size
        self.image = self.rng.random(width * height).astype(np.float32)

    def build(self):
        b = KernelBuilder("sobel_filter")
        img = b.buffer_param("img", DType.F32)
        out = b.buffer_param("out", DType.F32)
        width = b.scalar_param("width", DType.U32)
        height = b.scalar_param("height", DType.U32)

        gid = b.global_id(0)
        x = b.rem(gid, width)
        y = b.div(gid, width)

        interior = b.pand(
            b.pand(b.gt(x, 0), b.lt(x, b.sub(width, 1))),
            b.pand(b.gt(y, 0), b.lt(y, b.sub(height, 1))),
        )
        with b.if_(interior):
            # Load the 3x3 neighbourhood (interior guard keeps indices valid).
            neigh = {}
            for dy in (-1, 0, 1):
                row = b.add(y, dy) if dy >= 0 else b.sub(y, -dy)
                base = b.mul(row, width)
                for dx in (-1, 0, 1):
                    if dy == 0 and dx == 0:
                        continue
                    col = b.add(x, dx) if dx >= 0 else b.sub(x, -dx)
                    neigh[(dy, dx)] = b.load(img, b.add(base, col))

            gx = b.add(
                b.add(neigh[(-1, 1)], b.mul(2.0, neigh[(0, 1)])),
                b.sub(
                    b.sub(neigh[(1, 1)], neigh[(-1, -1)]),
                    b.add(b.mul(2.0, neigh[(0, -1)]), neigh[(1, -1)]),
                ),
            )
            gy = b.add(
                b.add(neigh[(1, -1)], b.mul(2.0, neigh[(1, 0)])),
                b.sub(
                    b.sub(neigh[(1, 1)], neigh[(-1, -1)]),
                    b.add(b.mul(2.0, neigh[(-1, 0)]), neigh[(-1, 1)]),
                ),
            )
            mag = b.sqrt(b.add(b.mul(gx, gx), b.mul(gy, gy)))
            b.store(out, gid, mag)
        kern = b.finish()
        kern.metadata["local_size"] = (self.local_size, 1, 1)
        n = self.width * self.height
        kern.metadata["global_size"] = (n, 1, 1)
        kern.metadata["buffer_nelems"] = {"img": n, "out": n}
        return kern

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        n = self.width * self.height
        return self.simple_run(
            session, compiled,
            inputs={"img": self.image},
            outputs={"out": (n, np.float32)},
            global_size=n, local_size=self.local_size,
            scalars={"width": self.width, "height": self.height},
            resources=resources, fault_hook=fault_hook,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        img = self.image.reshape(self.height, self.width).astype(np.float64)
        out = np.zeros_like(img)
        gx = (
            img[:-2, 2:] + 2 * img[1:-1, 2:] + img[2:, 2:]
            - img[:-2, :-2] - 2 * img[1:-1, :-2] - img[2:, :-2]
        )
        gy = (
            img[2:, :-2] + 2 * img[2:, 1:-1] + img[2:, 2:]
            - img[:-2, :-2] - 2 * img[:-2, 1:-1] - img[:-2, 2:]
        )
        out[1:-1, 1:-1] = np.sqrt(gx * gx + gy * gy)
        return {"out": out.astype(np.float32).reshape(-1)}

    def check(self, result, rtol: float = 1e-3, atol: float = 1e-4, ref=None) -> bool:
        return super().check(result, rtol=rtol, atol=atol, ref=ref)
