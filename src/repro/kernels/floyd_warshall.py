"""FloydWarshall (FW) — n kernel launches over an n×n distance matrix.

Each pass k loads three matrix entries and stores the relaxed distance:
memory-bound with heavily shared rows/columns (good cache behaviour,
slipstream-friendly).  One of the paper's three long-running power
workloads (Figure 5); its FAST variant regresses slightly (Figure 9).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult


class FloydWarshall(Benchmark):
    abbrev = "FW"
    name = "FloydWarshall"
    description = "all-pairs shortest paths; n memory-bound relaxation passes"

    def __init__(self, n: int = 128, local_size: int = 256, seed: int = 7,
                 k_iters: int = 0):
        """``k_iters`` > 0 measures a window of the algorithm: only the
        first ``k_iters`` relaxation passes run on the device (per-launch
        behaviour is identical across k, so the window is representative
        while keeping the 128-launch sequence simulation-tractable)."""
        super().__init__(seed)
        self.n = n
        self.local_size = local_size
        self.k_iters = k_iters or n
        mat = self.rng.integers(1, 64, size=(n, n)).astype(np.uint32)
        np.fill_diagonal(mat, 0)
        self.dist = mat

    def build(self):
        b = KernelBuilder("floyd_warshall")
        d = b.buffer_param("dist", DType.U32)
        n = b.scalar_param("n", DType.U32)
        k = b.scalar_param("k", DType.U32)

        gid = b.global_id(0)
        i = b.div(gid, n)
        j = b.rem(gid, n)
        d_ij = b.load(d, gid)
        d_ik = b.load(d, b.add(b.mul(i, n), k))
        d_kj = b.load(d, b.add(b.mul(k, n), j))
        relaxed = b.min(d_ij, b.add(d_ik, d_kj))
        b.store(d, gid, relaxed)
        kern = b.finish()
        kern.metadata["local_size"] = (self.local_size, 1, 1)
        kern.metadata["global_size"] = (self.n * self.n, 1, 1)
        kern.metadata["buffer_nelems"] = {"dist": self.n * self.n}
        return kern

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        buf = session.upload("dist", self.dist.reshape(-1))
        items = self.n * self.n
        launches = []
        for k in range(self.k_iters):
            launches.append(
                session.launch(
                    compiled, items, self.local_size, {"dist": buf},
                    scalars={"n": self.n, "k": k},
                    resources=resources, fault_hook=fault_hook,
                )
            )
        return BenchResult(
            outputs={"dist": session.download(buf)},
            launches=tuple(launches),
            session=session,
            compiled=compiled,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        d = self.dist.astype(np.int64).copy()
        for k in range(self.k_iters):
            d = np.minimum(d, d[:, k:k + 1] + d[k:k + 1, :])
        return {"dist": d.astype(np.uint32).reshape(-1)}
