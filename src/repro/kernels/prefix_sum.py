"""PrefixSum (PS) — single work-group LDS scan; under-utilizes the GPU.

A Hillis-Steele inclusive scan inside one 256-wide work-group: barrier-
and LDS-bound, and by construction it occupies exactly one CU of twelve
— the paper's second under-utilization case (Inter-Group costs only
1.59x because the redundant group lands on an idle CU; Intra-Group pays
mostly for communication, which FAST then removes).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult


class PrefixSum(Benchmark):
    abbrev = "PS"
    name = "PrefixSum"
    description = "single-group Hillis-Steele scan; barrier/LDS-bound"

    def __init__(self, n: int = 256, seed: int = 7):
        super().__init__(seed)
        if n & (n - 1):
            raise ValueError("n must be a power of two")
        self.n = n
        self.data = self.rng.random(n).astype(np.float32)

    def build(self):
        b = KernelBuilder("prefix_sum")
        src = b.buffer_param("src", DType.F32)
        dst = b.buffer_param("dst", DType.F32)
        block = b.local_alloc("block", DType.F32, self.n)

        lid = b.local_id(0)
        b.store_local(block, lid, b.load(src, lid))
        b.barrier()

        stride = b.var(DType.U32, 1, hint="stride")
        with b.loop() as lp:
            active_stride = b.lt(stride, self.n)
            lp.break_unless(active_stride)
            mine = b.load_local(block, lid)
            has_partner = b.ge(lid, stride)
            partner_idx = b.sub(b.max(lid, stride), stride)
            partner = b.load_local(block, partner_idx)
            summed = b.add(mine, partner)
            b.barrier()
            with b.if_(has_partner):
                b.store_local(block, lid, summed)
            b.barrier()
            b.set(stride, b.shl(stride, 1))

        b.store(dst, lid, b.load_local(block, lid))
        kern = b.finish()
        kern.metadata["local_size"] = (self.n, 1, 1)
        kern.metadata["global_size"] = (self.n, 1, 1)
        kern.metadata["buffer_nelems"] = {"src": self.n, "dst": self.n}
        return kern

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        return self.simple_run(
            session, compiled,
            inputs={"src": self.data},
            outputs={"dst": (self.n, np.float32)},
            global_size=self.n, local_size=self.n,
            resources=resources, fault_hook=fault_hook,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        return {"dst": np.cumsum(self.data.astype(np.float64)).astype(np.float32)}

    def check(self, result, rtol: float = 1e-3, atol: float = 1e-3, ref=None) -> bool:
        return super().check(result, rtol=rtol, atol=atol, ref=ref)
