"""BitonicSort (BitS) — multi-pass, global-store-saturated.

Every work-item loads and stores a pair of elements on every pass, so
the kernel is dominated by global memory writes.  This is the workload
the paper's Inter-Group RMT hurts most (9.48x): every store needs a
global-memory output comparison, and the extra communication/atomic
traffic lands on an already saturated memory hierarchy.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult


class BitonicSort(Benchmark):
    abbrev = "BitS"
    name = "BitonicSort"
    description = "log^2(n) passes of compare-exchange; store-bound"

    def __init__(self, n: int = 32768, local_size: int = 256, seed: int = 7,
                 start_stage: int = 1):
        """``start_stage`` > 1 measures a window of the sort: the host
        pre-applies the earlier stages (exactly as the device would) and
        the device executes stages ``start_stage``..log2(n).  Per-launch
        kernel behaviour is identical across stages, so the window is
        representative while keeping multi-launch simulation tractable."""
        super().__init__(seed)
        if n & (n - 1):
            raise ValueError("n must be a power of two")
        self.n = n
        self.local_size = local_size
        self.start_stage = start_stage
        self.data = self.rng.integers(0, 2**31, size=n, dtype=np.uint32)
        self.device_input = self._host_stages(self.data, 1, start_stage)

    def _host_stages(self, data: np.ndarray, first: int, limit: int) -> np.ndarray:
        """Apply bitonic stages [first, limit) on the host (oracle code)."""
        arr = data.astype(np.int64).copy()
        idx = np.arange(self.n // 2)
        for stage in range(first, limit):
            for pss in range(stage, 0, -1):
                pair = 1 << (pss - 1)
                left = (idx % pair) + (idx // pair) * (2 * pair)
                right = left + pair
                inc = ((idx // (1 << (stage - 1))) % 2) == 0
                lo = np.minimum(arr[left], arr[right])
                hi = np.maximum(arr[left], arr[right])
                arr[left] = np.where(inc, lo, hi)
                arr[right] = np.where(inc, hi, lo)
        return arr.astype(np.uint32)

    def build(self):
        b = KernelBuilder("bitonic_sort")
        arr = b.buffer_param("arr", DType.U32)
        stage = b.scalar_param("stage", DType.U32)
        pass_ = b.scalar_param("pass_of_stage", DType.U32)

        tid = b.global_id(0)
        pair_distance = b.shl(b.const(1, DType.U32), b.sub(pass_, 1))
        block_width = b.mul(2, pair_distance)
        left_id = b.add(
            b.rem(tid, pair_distance),
            b.mul(b.div(tid, pair_distance), block_width),
        )
        right_id = b.add(left_id, pair_distance)
        left = b.load(arr, left_id)
        right = b.load(arr, right_id)

        same_dir_width = b.shl(b.const(1, DType.U32), b.sub(stage, 1))
        increasing = b.eq(b.rem(b.div(tid, same_dir_width), 2), 0)

        greater = b.max(left, right)
        lesser = b.min(left, right)
        b.store(arr, left_id, b.select(increasing, lesser, greater))
        b.store(arr, right_id, b.select(increasing, greater, lesser))
        k = b.finish()
        k.metadata["local_size"] = (self.local_size, 1, 1)
        k.metadata["global_size"] = (self.n // 2, 1, 1)
        k.metadata["buffer_nelems"] = {"arr": self.n}
        return k

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        buf = session.upload("arr", self.device_input)
        items = self.n // 2
        num_stages = int(np.log2(self.n))
        launches = []
        for stage in range(self.start_stage, num_stages + 1):
            for pss in range(stage, 0, -1):
                launches.append(
                    session.launch(
                        compiled, items, self.local_size, {"arr": buf},
                        scalars={"stage": stage, "pass_of_stage": pss},
                        resources=resources, fault_hook=fault_hook,
                    )
                )
        return BenchResult(
            outputs={"arr": session.download(buf)},
            launches=tuple(launches),
            session=session,
            compiled=compiled,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        return {"arr": np.sort(self.data)}
