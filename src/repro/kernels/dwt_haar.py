"""DwtHaar1D (DWT) — per-group Haar wavelet with per-level global stores.

Each 256-wide work-group transforms a 512-sample signal in the LDS,
halving the live data every level behind barriers; detail coefficients
stream out to global memory at every level.  Memory-touched but not
memory-*bound* — the combination the paper uses to show that counters
alone don't explain RMT cost: DWT pays heavily for communication and
doubled work-groups (Figure 4) and is among the worst Inter-Group
kernels (7.35x).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult

_INV_SQRT2 = float(1.0 / np.sqrt(2.0))


class DwtHaar1D(Benchmark):
    abbrev = "DWT"
    name = "DwtHaar1D"
    description = "per-group Haar DWT; barrier-heavy, per-level detail stores"

    def __init__(self, n: int = 32768, local_size: int = 256, seed: int = 7):
        super().__init__(seed)
        self.n = n
        self.local_size = local_size
        self.signal_per_group = 2 * local_size
        if n % self.signal_per_group:
            raise ValueError("n must be a multiple of 2*local_size")
        self.data = self.rng.standard_normal(n).astype(np.float32)

    def build(self):
        ls = self.local_size
        span = self.signal_per_group
        levels = int(np.log2(span))
        b = KernelBuilder("dwt_haar")
        src = b.buffer_param("src", DType.F32)
        dst = b.buffer_param("dst", DType.F32)
        work = b.local_alloc("work", DType.F32, span)

        gid = b.global_id(0)
        lid = b.local_id(0)
        group = b.group_id(0)
        group_base = b.mul(group, span)

        # Stage the group's 512-sample span (two loads per work-item).
        b.store_local(work, lid, b.load(src, b.add(group_base, lid)))
        hi = b.add(lid, ls)
        b.store_local(work, hi, b.load(src, b.add(group_base, hi)))
        b.barrier()

        length = span
        for _level in range(levels):
            half = length // 2
            active = b.lt(lid, half)
            with b.if_(active):
                a = b.load_local(work, b.mul(lid, 2))
                c = b.load_local(work, b.add(b.mul(lid, 2), 1))
                approx = b.mul(b.add(a, c), _INV_SQRT2)
                detail = b.mul(b.sub(a, c), _INV_SQRT2)
                # Details are final: stream them out at their level slot.
                b.store(dst, b.add(group_base, b.add(half, lid)), detail)
            b.barrier()
            with b.if_(active):
                # All pair reads are complete; compact the approximations.
                b.store_local(work, lid, approx)
            b.barrier()
            length = half

        first = b.eq(lid, 0)
        with b.if_(first):
            b.store(dst, group_base, b.load_local(work, 0))
        kern = b.finish()
        kern.metadata["local_size"] = (ls, 1, 1)
        kern.metadata["global_size"] = (self.n // 2, 1, 1)
        kern.metadata["buffer_nelems"] = {"src": self.n, "dst": self.n}
        return kern

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        return self.simple_run(
            session, compiled,
            inputs={"src": self.data},
            outputs={"dst": (self.n, np.float32)},
            global_size=self.n // 2, local_size=self.local_size,
            resources=resources, fault_hook=fault_hook,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        span = self.signal_per_group
        out = np.zeros(self.n, dtype=np.float64)
        data = self.data.astype(np.float64)
        for g in range(self.n // span):
            seg = data[g * span:(g + 1) * span].copy()
            length = span
            base = g * span
            while length > 1:
                half = length // 2
                a, c = seg[0:length:2], seg[1:length:2]
                out[base + half: base + length] = (a - c) / np.sqrt(2.0)
                seg[:half] = (a + c) / np.sqrt(2.0)
                length = half
            out[base] = seg[0]
        return {"dst": out.astype(np.float32)}

    def check(self, result, rtol: float = 1e-3, atol: float = 1e-4, ref=None) -> bool:
        return super().check(result, rtol=rtol, atol=atol, ref=ref)
