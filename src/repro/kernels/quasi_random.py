"""QuasiRandomSequence (QRS) — Sobol-style direction-number XOR kernel.

Integer-compute-bound: each work-item folds 32 broadcast-loaded direction
numbers into four output dimensions.  Costs ~2x under every RMT flavor;
its four stores give FAST register-level communication something to
remove, matching QRS's improvement in Figure 9.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult

_DIMS = 2
_BITS = 32


class QuasiRandomSequence(Benchmark):
    abbrev = "QRS"
    name = "QuasiRandomSequence"
    description = "Sobol direction-number XOR folding; integer-compute-bound"

    def __init__(self, n: int = 16384, local_size: int = 256, seed: int = 7):
        super().__init__(seed)
        self.n = n
        self.local_size = local_size
        # Direction numbers: dimension-major table, classic Sobol first
        # dimensions degenerate to van-der-Corput-like shifts.
        table = np.zeros((_DIMS, _BITS), dtype=np.uint32)
        for d in range(_DIMS):
            for bit in range(_BITS):
                v = np.uint32(1) << np.uint32(31 - bit)
                if d:
                    v ^= np.uint32((0x9E3779B9 * (d + bit)) & 0xFFFFFFFF)
                table[d, bit] = v
        self.directions = table.reshape(-1)

    def build(self):
        b = KernelBuilder("quasi_random")
        dirs = b.buffer_param("directions", DType.U32)
        out = b.buffer_param("out", DType.U32)
        n = b.scalar_param("n", DType.U32)

        gid = b.global_id(0)
        results = []
        for d in range(_DIMS):
            acc = b.var(DType.U32, 0, hint=f"acc{d}")
            with b.for_range(0, _BITS) as bit:
                direction = b.load(dirs, b.add(d * _BITS, bit))
                bit_set = b.ne(b.and_(b.shr(gid, bit), 1), 0)
                masked = b.select(bit_set, direction, b.const(0, DType.U32))
                b.set(acc, b.xor(acc, masked))
            results.append(acc)
        for d, acc in enumerate(results):
            b.store(out, b.add(b.mul(d, n), gid), acc)
        kern = b.finish()
        kern.metadata["local_size"] = (self.local_size, 1, 1)
        kern.metadata["global_size"] = (self.n, 1, 1)
        kern.metadata["buffer_nelems"] = {
            "directions": _DIMS * _BITS, "out": _DIMS * self.n,
        }
        return kern

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        return self.simple_run(
            session, compiled,
            inputs={"directions": self.directions},
            outputs={"out": (_DIMS * self.n, np.uint32)},
            global_size=self.n, local_size=self.local_size,
            scalars={"n": self.n},
            resources=resources, fault_hook=fault_hook,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        idx = np.arange(self.n, dtype=np.uint32)
        table = self.directions.reshape(_DIMS, _BITS)
        out = np.zeros((_DIMS, self.n), dtype=np.uint32)
        for d in range(_DIMS):
            acc = np.zeros(self.n, dtype=np.uint32)
            for bit in range(_BITS):
                mask = ((idx >> np.uint32(bit)) & np.uint32(1)) != 0
                acc = np.where(mask, acc ^ table[d, bit], acc)
            out[d] = acc
        return {"out": out.reshape(-1)}
