"""Benchmark framework for the 16 AMD APP SDK kernels the paper evaluates.

Each benchmark re-implements one SDK sample's kernel in the IR DSL,
preserving the workload *properties* the paper's analysis hinges on —
memory- vs. compute- vs. LDS-boundedness, barrier structure, global
write density, divergence — plus the host driver (input generation,
launch loop for multi-pass algorithms) and a verification oracle,
mirroring each SDK application's built-in verify option.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..compiler.pipeline import CompiledKernel, compile_kernel
from ..gpu.engine import LaunchResult
from ..gpu.occupancy import KernelResources
from ..ir.core import Kernel
from ..runtime.api import Session


@dataclass
class BenchResult:
    """Everything the harness needs from one benchmark execution."""

    outputs: Dict[str, np.ndarray]
    launches: Tuple[LaunchResult, ...]
    session: Session
    compiled: CompiledKernel

    @property
    def cycles(self) -> float:
        return sum(l.cycles for l in self.launches)

    @property
    def detections(self):
        out = []
        for l in self.launches:
            out.extend(l.detections)
        return out

    def merged_counters(self):
        return self.session.device.merged_counters()


class Benchmark(abc.ABC):
    """One SDK benchmark: kernel builder + host driver + oracle."""

    #: Short name used in the paper's figures (e.g. "BinS").
    abbrev: str = ""
    #: Full SDK sample name.
    name: str = ""
    #: One-line description of the workload character.
    description: str = ""

    def __init__(self, seed: int = 7):
        self.rng = np.random.default_rng(seed)

    # -- to implement ------------------------------------------------------

    @abc.abstractmethod
    def build(self) -> Kernel:
        """Construct the kernel IR (with ``metadata['local_size']`` set)."""

    @abc.abstractmethod
    def run(
        self,
        session: Session,
        compiled: CompiledKernel,
        resources: Optional[KernelResources] = None,
        fault_hook=None,
    ) -> BenchResult:
        """Upload inputs, perform all launches, return outputs."""

    @abc.abstractmethod
    def reference(self) -> Dict[str, np.ndarray]:
        """Host-side golden outputs."""

    # -- common helpers ------------------------------------------------------

    def check(
        self,
        result: BenchResult,
        rtol: float = 1e-4,
        atol: float = 1e-4,
        ref: Optional[Dict[str, np.ndarray]] = None,
    ) -> bool:
        """Verify outputs against the reference (SDK-style self check).

        Deterministic callers that check many runs (fault campaigns)
        pass a precomputed ``ref`` so the host-side golden model runs
        once instead of once per trial.
        """
        if ref is None:
            ref = self.reference()
        for key, expected in ref.items():
            got = result.outputs[key]
            if expected.dtype.kind == "f":
                if not np.allclose(got, expected, rtol=rtol, atol=atol):
                    return False
            else:
                if not np.array_equal(got, expected):
                    return False
        return True

    def compile(self, variant: str = "original", communication: bool = True,
                cache=None) -> CompiledKernel:
        """Build + compile this benchmark's kernel for a variant.

        ``cache`` follows :func:`repro.compiler.pipeline.compile_kernel`:
        None uses the process-wide compile cache, False bypasses it.
        """
        return compile_kernel(self.build(), variant,
                              communication=communication, cache=cache)

    def simple_run(
        self,
        session: Session,
        compiled: CompiledKernel,
        inputs: Dict[str, np.ndarray],
        outputs: Dict[str, Tuple[int, object]],
        global_size,
        local_size,
        scalars: Optional[Dict[str, object]] = None,
        resources: Optional[KernelResources] = None,
        fault_hook=None,
    ) -> BenchResult:
        """Host driver for single-launch benchmarks."""
        bufs = {name: session.upload(name, arr) for name, arr in inputs.items()}
        for name, (nelems, dtype) in outputs.items():
            bufs[name] = session.zeros(name, nelems, dtype)
        launch = session.launch(
            compiled, global_size, local_size, bufs,
            scalars=scalars, resources=resources, fault_hook=fault_hook,
        )
        outs = {name: session.download(bufs[name]) for name in outputs}
        return BenchResult(
            outputs=outs, launches=(launch,), session=session, compiled=compiled
        )

    def execute(
        self,
        variant: str = "original",
        communication: bool = True,
        resources: Optional[KernelResources] = None,
        session: Optional[Session] = None,
        fault_hook=None,
    ) -> BenchResult:
        """One-call compile + run on a fresh session."""
        compiled = self.compile(variant, communication=communication)
        session = session or Session()
        return self.run(session, compiled, resources=resources, fault_hook=fault_hook)
