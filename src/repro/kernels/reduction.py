"""Reduction (R) — LDS tree reduction with one store per work-group.

Memory-bound on the input read, then a barrier-heavy LDS tree.  Only
lane 0 of each group stores a partial sum, so Inter-Group RMT has few
outputs to compare (cheap), while Intra-Group−LDS must compare on every
LDS tree store — communication is over half of R's intra overhead in the
paper's Figure 4.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult


class Reduction(Benchmark):
    abbrev = "R"
    name = "Reduction"
    description = "per-group LDS tree sum; memory-bound input, LDS-store-heavy"

    def __init__(self, n: int = 65536, local_size: int = 256, seed: int = 7):
        super().__init__(seed)
        if n % local_size:
            raise ValueError("n must be a multiple of local_size")
        self.n = n
        self.local_size = local_size
        self.data = self.rng.integers(0, 1024, size=n, dtype=np.uint32)

    def build(self):
        ls = self.local_size
        b = KernelBuilder("reduction")
        src = b.buffer_param("src", DType.U32)
        dst = b.buffer_param("dst", DType.U32)
        scratch = b.local_alloc("scratch", DType.U32, ls)

        gid = b.global_id(0)
        lid = b.local_id(0)
        b.store_local(scratch, lid, b.load(src, gid))
        b.barrier()

        stride = b.var(DType.U32, ls // 2, hint="stride")
        with b.loop() as lp:
            lp.break_unless(b.gt(stride, 0))
            in_tree = b.lt(lid, stride)
            with b.if_(in_tree):
                mine = b.load_local(scratch, lid)
                other = b.load_local(scratch, b.add(lid, stride))
                b.store_local(scratch, lid, b.add(mine, other))
            b.barrier()
            b.set(stride, b.shr(stride, 1))

        first = b.eq(lid, 0)
        with b.if_(first):
            b.store(dst, b.group_id(0), b.load_local(scratch, 0))
        kern = b.finish()
        kern.metadata["local_size"] = (ls, 1, 1)
        kern.metadata["global_size"] = (self.n, 1, 1)
        kern.metadata["buffer_nelems"] = {"src": self.n, "dst": self.n // ls}
        return kern

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        groups = self.n // self.local_size
        return self.simple_run(
            session, compiled,
            inputs={"src": self.data},
            outputs={"dst": (groups, np.uint32)},
            global_size=self.n, local_size=self.local_size,
            resources=resources, fault_hook=fault_hook,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        groups = self.n // self.local_size
        return {
            "dst": self.data.reshape(groups, self.local_size)
            .astype(np.uint64).sum(axis=1).astype(np.uint32)
        }
