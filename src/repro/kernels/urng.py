"""URNG (Uniform Random Noise Generator) — LDS-staged LCG noise kernel.

Each work-item runs a chain of linear-congruential steps, staging state
through its LDS slot between rounds (the SDK kernel mixes noise through
local memory the same way).  Compute- plus LDS-bound: ~2x under
Intra-Group RMT, with the −LDS flavor trading duplicated LDS traffic for
per-local-store output comparisons.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult

_ROUNDS = 16
_LCG_A = np.uint32(1664525)
_LCG_C = np.uint32(1013904223)


class Urng(Benchmark):
    abbrev = "URNG"
    name = "URNG"
    description = "LCG noise with LDS staging; compute/LDS-bound"

    def __init__(self, n: int = 32768, local_size: int = 256, seed: int = 7):
        super().__init__(seed)
        self.n = n
        self.local_size = local_size
        self.seeds = self.rng.integers(1, 2**31, size=n, dtype=np.uint32)

    def build(self):
        b = KernelBuilder("urng")
        seeds = b.buffer_param("seeds", DType.U32)
        out = b.buffer_param("out", DType.F32)
        stage = b.local_alloc("stage", DType.U32, self.local_size)

        gid = b.global_id(0)
        lid = b.local_id(0)
        state = b.var(DType.U32, 0, hint="state")
        b.set(state, b.load(seeds, gid))
        for _ in range(_ROUNDS):
            # LCG step, then bounce the state through local memory the way
            # the SDK kernel stages noise planes.
            b.set(state, b.add(b.mul(state, int(_LCG_A)), int(_LCG_C)))
            b.store_local(stage, lid, state)
            mixed = b.load_local(stage, lid)
            b.set(state, b.xor(mixed, b.shr(mixed, 13)))
        # Normalize to [0, 1).
        norm = b.mul(b.u2f(state), 1.0 / 4294967296.0)
        b.store(out, gid, norm)
        kern = b.finish()
        kern.metadata["local_size"] = (self.local_size, 1, 1)
        kern.metadata["global_size"] = (self.n, 1, 1)
        kern.metadata["buffer_nelems"] = {"seeds": self.n, "out": self.n}
        return kern

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        return self.simple_run(
            session, compiled,
            inputs={"seeds": self.seeds},
            outputs={"out": (self.n, np.float32)},
            global_size=self.n, local_size=self.local_size,
            resources=resources, fault_hook=fault_hook,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        with np.errstate(over="ignore"):
            state = self.seeds.copy()
            for _ in range(_ROUNDS):
                state = state * _LCG_A + _LCG_C
                state = state ^ (state >> np.uint32(13))
            return {"out": (state.astype(np.float64) / 2**32).astype(np.float32)}
