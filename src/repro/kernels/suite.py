"""Registry of the 16 benchmark kernels (paper Section 5).

``SUITE`` maps the paper's figure abbreviations to benchmark factories in
the order the figures plot them.  ``make_benchmark`` builds one at the
default (device-saturating) scale or the reduced ``small`` scale used by
the fast test profile.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import Benchmark
from .binary_search import BinarySearch
from .binomial_option import BinomialOption
from .bitonic_sort import BitonicSort
from .black_scholes import BlackScholes
from .dct import Dct
from .dwt_haar import DwtHaar1D
from .fast_walsh import FastWalshTransform
from .floyd_warshall import FloydWarshall
from .matmul import MatrixMultiplication
from .nbody import NBody
from .prefix_sum import PrefixSum
from .quasi_random import QuasiRandomSequence
from .reduction import Reduction
from .simple_convolution import SimpleConvolution
from .sobel_filter import SobelFilter
from .urng import Urng

#: Paper-scale constructors, keyed by figure abbreviation, in figure order.
SUITE: Dict[str, Callable[[], Benchmark]] = {
    "BinS": lambda: BinarySearch(n=262144, segment=8),
    "BO": lambda: BinomialOption(options=512),
    "BitS": lambda: BitonicSort(n=65536, start_stage=14),
    "BlkSch": lambda: BlackScholes(n=32768),
    "DCT": lambda: Dct(width=128, height=128),
    "DWT": lambda: DwtHaar1D(n=32768),
    "FWT": lambda: FastWalshTransform(n=65536),
    "FW": lambda: FloydWarshall(n=128, k_iters=32),
    "MM": lambda: MatrixMultiplication(n=128),
    "NB": lambda: NBody(bodies=1024),
    "PS": lambda: PrefixSum(n=256),
    "QRS": lambda: QuasiRandomSequence(n=16384),
    "R": lambda: Reduction(n=65536),
    "SC": lambda: SimpleConvolution(width=1024, height=256),
    "SF": lambda: SobelFilter(width=2048, height=128),
    "URNG": lambda: Urng(n=32768),
}

#: Reduced-scale constructors for fast unit/integration testing.
SMALL_SUITE: Dict[str, Callable[[], Benchmark]] = {
    "BinS": lambda: BinarySearch(n=8192, segment=8),
    "BO": lambda: BinomialOption(options=48),
    "BitS": lambda: BitonicSort(n=2048, local_size=128),
    "BlkSch": lambda: BlackScholes(n=2048),
    "DCT": lambda: Dct(width=64, height=64),
    "DWT": lambda: DwtHaar1D(n=4096),
    "FWT": lambda: FastWalshTransform(n=4096, local_size=128),
    "FW": lambda: FloydWarshall(n=32, local_size=128),
    "MM": lambda: MatrixMultiplication(n=64),
    "NB": lambda: NBody(bodies=256, local_size=64),
    "PS": lambda: PrefixSum(n=256),
    "QRS": lambda: QuasiRandomSequence(n=2048),
    "R": lambda: Reduction(n=8192),
    "SC": lambda: SimpleConvolution(width=64, height=64, local_size=128),
    "SF": lambda: SobelFilter(width=64, height=64, local_size=128),
    "URNG": lambda: Urng(n=4096, local_size=128),
}

#: The three long-running kernels used for the power study (Figure 5).
POWER_KERNELS: List[str] = ["BO", "BlkSch", "FW"]


def make_benchmark(abbrev: str, scale: str = "paper") -> Benchmark:
    """Instantiate a suite benchmark by abbreviation."""
    table = SUITE if scale == "paper" else SMALL_SUITE
    try:
        return table[abbrev]()
    except KeyError:
        raise KeyError(
            f"unknown benchmark {abbrev!r}; choose from {sorted(SUITE)}"
        ) from None


def all_abbrevs() -> List[str]:
    return list(SUITE.keys())
