"""NBody (NB) — all-pairs gravity, compute-bound, CU-under-utilizing.

Each work-item integrates one body against every other body with a
rsqrt-heavy inner loop over broadcast position loads.  Sized (1024
bodies, 128-wide groups = 8 work-groups) to reproduce the paper's
under-utilization observation: NB fills only 8 of the 12 CUs, so
Inter-Group RMT's doubled groups land on idle CUs almost for free
(1.16x in Figure 6).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult

_EPS2 = 1e-3
_DT = 0.005


class NBody(Benchmark):
    abbrev = "NB"
    name = "NBody"
    description = "all-pairs gravitation; compute-bound, under-utilizes CUs"

    def __init__(self, bodies: int = 1024, local_size: int = 128, seed: int = 7):
        super().__init__(seed)
        self.bodies = bodies
        self.local_size = local_size
        self.px = self.rng.random(bodies).astype(np.float32) * 10
        self.py = self.rng.random(bodies).astype(np.float32) * 10
        self.pz = self.rng.random(bodies).astype(np.float32) * 10
        self.mass = (self.rng.random(bodies).astype(np.float32) + 0.5)

    def build(self):
        b = KernelBuilder("nbody")
        px = b.buffer_param("px", DType.F32)
        py = b.buffer_param("py", DType.F32)
        pz = b.buffer_param("pz", DType.F32)
        mass = b.buffer_param("mass", DType.F32)
        ax_out = b.buffer_param("ax", DType.F32)
        ay_out = b.buffer_param("ay", DType.F32)
        az_out = b.buffer_param("az", DType.F32)
        n = b.scalar_param("n", DType.U32)

        gid = b.global_id(0)
        my_x = b.load(px, gid)
        my_y = b.load(py, gid)
        my_z = b.load(pz, gid)

        ax = b.var(DType.F32, 0.0, hint="ax")
        ay = b.var(DType.F32, 0.0, hint="ay")
        az = b.var(DType.F32, 0.0, hint="az")

        with b.for_range(0, n) as j:
            ox = b.load(px, j)
            oy = b.load(py, j)
            oz = b.load(pz, j)
            om = b.load(mass, j)
            dx = b.sub(ox, my_x)
            dy = b.sub(oy, my_y)
            dz = b.sub(oz, my_z)
            r2 = b.add(
                b.add(b.mul(dx, dx), b.mul(dy, dy)),
                b.add(b.mul(dz, dz), _EPS2),
            )
            inv_r = b.rsqrt(r2)
            inv_r3 = b.mul(b.mul(inv_r, inv_r), inv_r)
            s = b.mul(om, inv_r3)
            b.set(ax, b.add(ax, b.mul(s, dx)))
            b.set(ay, b.add(ay, b.mul(s, dy)))
            b.set(az, b.add(az, b.mul(s, dz)))

        b.store(ax_out, gid, b.mul(ax, _DT))
        b.store(ay_out, gid, b.mul(ay, _DT))
        b.store(az_out, gid, b.mul(az, _DT))
        kern = b.finish()
        kern.metadata["local_size"] = (self.local_size, 1, 1)
        kern.metadata["global_size"] = (self.bodies, 1, 1)
        nb = self.bodies
        kern.metadata["buffer_nelems"] = {
            "px": nb, "py": nb, "pz": nb, "mass": nb,
            "ax": nb, "ay": nb, "az": nb,
        }
        return kern

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        nb = self.bodies
        return self.simple_run(
            session, compiled,
            inputs={"px": self.px, "py": self.py, "pz": self.pz, "mass": self.mass},
            outputs={
                "ax": (nb, np.float32),
                "ay": (nb, np.float32),
                "az": (nb, np.float32),
            },
            global_size=nb, local_size=self.local_size,
            scalars={"n": nb},
            resources=resources, fault_hook=fault_hook,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        px = self.px.astype(np.float64)
        py = self.py.astype(np.float64)
        pz = self.pz.astype(np.float64)
        m = self.mass.astype(np.float64)
        dx = px[None, :] - px[:, None]
        dy = py[None, :] - py[:, None]
        dz = pz[None, :] - pz[:, None]
        r2 = dx * dx + dy * dy + dz * dz + _EPS2
        inv_r3 = r2 ** -1.5
        s = m[None, :] * inv_r3
        return {
            "ax": (np.sum(s * dx, axis=1) * _DT).astype(np.float32),
            "ay": (np.sum(s * dy, axis=1) * _DT).astype(np.float32),
            "az": (np.sum(s * dz, axis=1) * _DT).astype(np.float32),
        }

    def check(self, result, rtol: float = 2e-2, atol: float = 2e-3, ref=None) -> bool:
        # f32 rsqrt accumulation over 1k terms vs f64 oracle.
        return super().check(result, rtol=rtol, atol=atol, ref=ref)
