"""MatrixMultiplication (MM) — LDS-tiled GEMM, compute- and LDS-bound.

The classic tiled kernel: each 8×8 work-group streams tiles of A and B
through the LDS with barriers and accumulates one output element per
work-item.  Both compute and LDS bandwidth run hot, so Intra-Group RMT
costs ~2x — and the +LDS flavor's doubled tile allocation limits
work-group scheduling, the LDS-over-allocation effect the paper singles
out for MM in Figure 4.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult

_TILE = 8


class MatrixMultiplication(Benchmark):
    abbrev = "MM"
    name = "MatrixMultiplication"
    description = "LDS-tiled GEMM; compute/LDS-throughput-bound"

    def __init__(self, n: int = 128, seed: int = 7):
        super().__init__(seed)
        if n % _TILE:
            raise ValueError("n must be a multiple of the tile size")
        self.n = n
        self.a = self.rng.standard_normal((n, n)).astype(np.float32)
        self.b = self.rng.standard_normal((n, n)).astype(np.float32)

    def build(self):
        b = KernelBuilder("matmul")
        a_buf = b.buffer_param("a", DType.F32)
        b_buf = b.buffer_param("b", DType.F32)
        c_buf = b.buffer_param("c", DType.F32)
        n = b.scalar_param("n", DType.U32)

        tile_a = b.local_alloc("tile_a", DType.F32, _TILE * _TILE)
        tile_b = b.local_alloc("tile_b", DType.F32, _TILE * _TILE)

        col = b.global_id(0)
        row = b.global_id(1)
        lx = b.local_id(0)
        ly = b.local_id(1)
        lflat = b.add(b.mul(ly, _TILE), lx)

        acc = b.var(DType.F32, 0.0, hint="acc")
        num_tiles = b.div(n, _TILE)
        with b.for_range(0, num_tiles) as t:
            # Stage one tile of A (row block) and B (column block).
            a_idx = b.add(b.mul(row, n), b.add(b.mul(t, _TILE), lx))
            b_idx = b.add(b.mul(b.add(b.mul(t, _TILE), ly), n), col)
            b.store_local(tile_a, lflat, b.load(a_buf, a_idx))
            b.store_local(tile_b, lflat, b.load(b_buf, b_idx))
            b.barrier()
            for kk in range(_TILE):
                av = b.load_local(tile_a, b.add(b.mul(ly, _TILE), kk))
                bv = b.load_local(tile_b, b.add(b.mul(kk, _TILE), lx))
                b.set(acc, b.add(acc, b.mul(av, bv)))
            b.barrier()
        b.store(c_buf, b.add(b.mul(row, n), col), acc)
        kern = b.finish()
        kern.metadata["local_size"] = (_TILE, _TILE, 1)
        kern.metadata["global_size"] = (self.n, self.n, 1)
        nn = self.n * self.n
        kern.metadata["buffer_nelems"] = {"a": nn, "b": nn, "c": nn}
        return kern

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        return self.simple_run(
            session, compiled,
            inputs={"a": self.a.reshape(-1), "b": self.b.reshape(-1)},
            outputs={"c": (self.n * self.n, np.float32)},
            global_size=(self.n, self.n), local_size=(_TILE, _TILE),
            scalars={"n": self.n},
            resources=resources, fault_hook=fault_hook,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        c = self.a.astype(np.float64) @ self.b.astype(np.float64)
        return {"c": c.astype(np.float32).reshape(-1)}

    def check(self, result, rtol: float = 1e-3, atol: float = 1e-3, ref=None) -> bool:
        return super().check(result, rtol=rtol, atol=atol, ref=ref)
