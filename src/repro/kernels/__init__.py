"""The 16 AMD APP SDK benchmark kernels the paper evaluates."""

from .base import BenchResult, Benchmark
from .suite import POWER_KERNELS, SMALL_SUITE, SUITE, all_abbrevs, make_benchmark

__all__ = [
    "BenchResult",
    "Benchmark",
    "POWER_KERNELS",
    "SMALL_SUITE",
    "SUITE",
    "all_abbrevs",
    "make_benchmark",
]
