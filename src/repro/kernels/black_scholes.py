"""BlackScholes (BlkSch) — transcendental-heavy, compute-bound.

One load, a deep chain of exp/log/sqrt arithmetic, two stores.  Compute-
and VALU-bound kernels like this cannot hide redundant work behind
memory latency, so both Intra- and Inter-Group RMT cost the expected ~2x
(paper Figures 2 and 6).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult

_S_LOW, _S_HIGH = 10.0, 100.0
_K_LOW, _K_HIGH = 10.0, 100.0
_T_LOW, _T_HIGH = 1.0, 10.0
_R_LOW, _R_HIGH = 0.01, 0.05
_V_LOW, _V_HIGH = 0.01, 0.10

_CND_A1 = 0.319381530
_CND_A2 = -0.356563782
_CND_A3 = 1.781477937
_CND_A4 = -1.821255978
_CND_A5 = 1.330274429
_INV_SQRT_2PI = 0.39894228040143267


class BlackScholes(Benchmark):
    abbrev = "BlkSch"
    name = "BlackScholes"
    description = "option pricing; transcendental-heavy, compute-bound"

    def __init__(self, n: int = 8192, local_size: int = 256, seed: int = 7):
        super().__init__(seed)
        self.n = n
        self.local_size = local_size
        self.rand = self.rng.random(n).astype(np.float32)

    def build(self):
        b = KernelBuilder("black_scholes")
        rnd = b.buffer_param("rand", DType.F32)
        call = b.buffer_param("call", DType.F32)
        put = b.buffer_param("put", DType.F32)

        gid = b.global_id(0)
        u = b.load(rnd, gid)

        def lerp(lo, hi):
            return b.add(lo, b.mul(u, hi - lo))

        s = lerp(_S_LOW, _S_HIGH)
        k = lerp(_K_LOW, _K_HIGH)
        t = lerp(_T_LOW, _T_HIGH)
        r = lerp(_R_LOW, _R_HIGH)
        v = lerp(_V_LOW, _V_HIGH)

        sqrt_t = b.sqrt(t)
        sigma_sqrt_t = b.mul(v, sqrt_t)
        d1 = b.div(
            b.add(b.log(b.div(s, k)),
                  b.mul(b.add(r, b.mul(b.mul(v, v), 0.5)), t)),
            sigma_sqrt_t,
        )
        d2 = b.sub(d1, sigma_sqrt_t)

        def cnd(d):
            # Abramowitz-Stegun polynomial approximation of the standard
            # normal CDF (the SDK kernel's phi()).
            kk = b.div(1.0, b.add(1.0, b.mul(0.2316419, b.abs(d))))
            poly = b.mul(kk, _CND_A5)
            poly = b.mul(kk, b.add(poly, _CND_A4))
            poly = b.mul(kk, b.add(poly, _CND_A3))
            poly = b.mul(kk, b.add(poly, _CND_A2))
            poly = b.mul(kk, b.add(poly, _CND_A1))
            pdf = b.mul(_INV_SQRT_2PI,
                        b.exp(b.mul(-0.5, b.mul(d, d))))
            w = b.sub(1.0, b.mul(pdf, poly))
            neg = b.lt(d, 0.0)
            return b.select(neg, b.sub(1.0, w), w)

        cnd_d1 = cnd(d1)
        cnd_d2 = cnd(d2)
        discount = b.mul(k, b.exp(b.mul(b.neg(r), t)))
        call_price = b.sub(b.mul(s, cnd_d1), b.mul(discount, cnd_d2))
        put_price = b.sub(
            b.mul(discount, b.sub(1.0, cnd_d2)),
            b.mul(s, b.sub(1.0, cnd_d1)),
        )
        b.store(call, gid, call_price)
        b.store(put, gid, put_price)
        kern = b.finish()
        kern.metadata["local_size"] = (self.local_size, 1, 1)
        kern.metadata["global_size"] = (self.n, 1, 1)
        kern.metadata["buffer_nelems"] = {
            "rand": self.n, "call": self.n, "put": self.n,
        }
        return kern

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        return self.simple_run(
            session, compiled,
            inputs={"rand": self.rand},
            outputs={"call": (self.n, np.float32), "put": (self.n, np.float32)},
            global_size=self.n, local_size=self.local_size,
            resources=resources, fault_hook=fault_hook,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        u = self.rand.astype(np.float64)
        s = _S_LOW + u * (_S_HIGH - _S_LOW)
        k = _K_LOW + u * (_K_HIGH - _K_LOW)
        t = _T_LOW + u * (_T_HIGH - _T_LOW)
        r = _R_LOW + u * (_R_HIGH - _R_LOW)
        v = _V_LOW + u * (_V_HIGH - _V_LOW)
        sigma_sqrt_t = v * np.sqrt(t)
        d1 = (np.log(s / k) + (r + 0.5 * v * v) * t) / sigma_sqrt_t
        d2 = d1 - sigma_sqrt_t

        def cnd(d):
            kk = 1.0 / (1.0 + 0.2316419 * np.abs(d))
            poly = kk * _CND_A5
            poly = kk * (poly + _CND_A4)
            poly = kk * (poly + _CND_A3)
            poly = kk * (poly + _CND_A2)
            poly = kk * (poly + _CND_A1)
            w = 1.0 - _INV_SQRT_2PI * np.exp(-0.5 * d * d) * poly
            return np.where(d < 0, 1.0 - w, w)

        cnd_d1 = cnd(d1)
        cnd_d2 = cnd(d2)
        discount = k * np.exp(-r * t)
        call = s * cnd_d1 - discount * cnd_d2
        put = discount * (1.0 - cnd_d2) - s * (1.0 - cnd_d1)
        return {
            "call": call.astype(np.float32),
            "put": put.astype(np.float32),
        }
