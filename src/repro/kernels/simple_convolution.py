"""SimpleConvolution (SC) — 5×5 image convolution, memory-bound with
heavily shared neighbourhood reads.

Neighbouring work-items read overlapping pixel windows, so redundant
work-item pairs coalesce to the same cache lines and redundant groups
prefetch for each other ("slipstreaming").  SC is the kernel the paper
found *accelerated* by Intra-Group RMT and nearly free under Inter-Group
RMT (1.10x).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult

_MASK = 5


class SimpleConvolution(Benchmark):
    abbrev = "SC"
    name = "SimpleConvolution"
    description = "5x5 convolution; memory-bound, cache-friendly shared reads"

    def __init__(self, width: int = 256, height: int = 128, local_size: int = 256, seed: int = 7):
        super().__init__(seed)
        self.width = width
        self.height = height
        self.local_size = local_size
        self.image = self.rng.random(width * height).astype(np.float32)
        mask = self.rng.random((_MASK, _MASK)).astype(np.float32)
        self.mask = (mask / mask.sum()).reshape(-1)

    def build(self):
        w, h = self.width, self.height
        b = KernelBuilder("simple_convolution")
        img = b.buffer_param("img", DType.F32)
        mask = b.buffer_param("mask", DType.F32)
        out = b.buffer_param("out", DType.F32)
        width = b.scalar_param("width", DType.U32)
        height = b.scalar_param("height", DType.U32)

        gid = b.global_id(0)
        x = b.bitcast(b.rem(gid, width), DType.I32)
        y = b.bitcast(b.div(gid, width), DType.I32)
        wi = b.bitcast(width, DType.I32)
        hi = b.bitcast(height, DType.I32)
        x_max = b.sub(wi, 1)
        y_max = b.sub(hi, 1)

        acc = b.var(DType.F32, 0.0, hint="acc")
        half = _MASK // 2
        for dy in range(-half, half + 1):
            sy = b.min(b.max(b.add(y, dy), 0), y_max)
            row_base = b.mul(sy, wi)
            for dx in range(-half, half + 1):
                sx = b.min(b.max(b.add(x, dx), 0), x_max)
                pix = b.load(img, b.bitcast(b.add(row_base, sx), DType.U32))
                mval = b.load(mask, (dy + half) * _MASK + (dx + half))
                b.set(acc, b.add(acc, b.mul(pix, mval)))
        b.store(out, gid, acc)
        kern = b.finish()
        kern.metadata["local_size"] = (self.local_size, 1, 1)
        kern.metadata["global_size"] = (w * h, 1, 1)
        kern.metadata["buffer_nelems"] = {
            "img": w * h, "mask": _MASK * _MASK, "out": w * h,
        }
        return kern

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        n = self.width * self.height
        return self.simple_run(
            session, compiled,
            inputs={"img": self.image, "mask": self.mask},
            outputs={"out": (n, np.float32)},
            global_size=n, local_size=self.local_size,
            scalars={"width": self.width, "height": self.height},
            resources=resources, fault_hook=fault_hook,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        img = self.image.reshape(self.height, self.width).astype(np.float64)
        mask = self.mask.reshape(_MASK, _MASK).astype(np.float64)
        half = _MASK // 2
        out = np.zeros_like(img)
        padded = np.pad(img, half, mode="edge")
        for dy in range(_MASK):
            for dx in range(_MASK):
                out += mask[dy, dx] * padded[dy:dy + self.height, dx:dx + self.width]
        return {"out": out.astype(np.float32).reshape(-1)}

    def check(self, result, rtol: float = 1e-3, atol: float = 1e-4, ref=None) -> bool:
        return super().check(result, rtol=rtol, atol=atol, ref=ref)
