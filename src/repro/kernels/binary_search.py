"""BinarySearch (BinS) — memory-latency-bound with almost no global writes.

Each work-item owns a segment of a sorted array, loads the segment
bounds, and only the (single) work-item whose segment contains the key
scans it and writes the result — the workload property the paper uses
to explain BinS's low RMT overheads: most work-items never execute a
global store, so they never pay for output comparison at all.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.builder import KernelBuilder
from ..ir.types import DType
from .base import Benchmark, BenchResult

_NOT_FOUND = np.uint32(0xFFFFFFFF)


class BinarySearch(Benchmark):
    abbrev = "BinS"
    name = "BinarySearch"
    description = "segmented binary search; divergent, store-starved, latency-bound"

    def __init__(self, n: int = 32768, segment: int = 8, local_size: int = 64, seed: int = 7):
        super().__init__(seed)
        if n % segment:
            raise ValueError("n must be a multiple of segment")
        self.n = n
        self.segment = segment
        self.local_size = local_size
        self.data = np.sort(
            self.rng.choice(np.arange(4 * n, dtype=np.uint32), size=n, replace=False)
        )
        self.key = int(self.data[self.rng.integers(0, n)])

    def build(self):
        b = KernelBuilder("binary_search")
        arr = b.buffer_param("arr", DType.U32)
        out = b.buffer_param("out", DType.U32)
        key = b.scalar_param("key", DType.U32)
        seg = b.scalar_param("segment", DType.U32)
        n = b.scalar_param("n", DType.U32)

        gid = b.global_id(0)
        lo_idx = b.mul(gid, seg)
        hi_idx = b.add(lo_idx, seg)
        lo_val = b.load(arr, lo_idx)
        last = b.sub(n, 1)
        hi_probe = b.min(hi_idx, last)
        hi_val = b.load(arr, hi_probe)
        at_end = b.eq(hi_idx, n)

        # Key inside [lo_val, hi_val) — or in the final segment's tail.
        in_seg = b.pand(b.le(lo_val, key), b.por(b.lt(key, hi_val), at_end))
        with b.if_(in_seg):
            # Divergent sequential scan of the owning segment.
            i = b.var(DType.U32, lo_idx, hint="scan")
            with b.loop() as lp:
                within = b.lt(i, hi_idx)
                v = b.load(arr, b.min(i, last))
                miss = b.pand(within, b.ne(v, key))
                lp.break_unless(miss)
                b.set(i, b.add(i, 1))
            found = b.lt(i, hi_idx)
            hit = b.load(arr, b.min(i, last))
            match = b.pand(found, b.eq(hit, key))
            with b.if_(match):
                b.store(out, 0, i)
        k = b.finish()
        k.metadata["local_size"] = (self.local_size, 1, 1)
        k.metadata["global_size"] = (self.n // self.segment, 1, 1)
        k.metadata["buffer_nelems"] = {"arr": self.n, "out": 1}
        return k

    def run(self, session, compiled, resources=None, fault_hook=None) -> BenchResult:
        items = self.n // self.segment
        return self.simple_run(
            session, compiled,
            inputs={"arr": self.data},
            outputs={"out": (1, np.uint32)},
            global_size=items, local_size=self.local_size,
            scalars={"key": self.key, "segment": self.segment, "n": self.n},
            resources=resources, fault_hook=fault_hook,
        )

    def reference(self) -> Dict[str, np.ndarray]:
        idx = int(np.searchsorted(self.data, self.key))
        assert self.data[idx] == self.key
        return {"out": np.array([idx], dtype=np.uint32)}
