"""Planted-miscompile selftest for the translation validator.

The validator is only trustworthy if it provably rejects broken
compilers.  This module plants the classic RMT pass bugs through the
same ``rmt_pass``/``extra_passes`` hooks the fuzz oracle uses and
asserts each one dies with a ``failed`` witness on the expected
obligation:

* **off-by-one**  — a store-index permutation (miscompile);
* **skip-compare** — an output comparison silently dropped (coverage
  hole: dynamically *invisible* on unfaulted runs — only the static
  checkers see it);
* **drop-replica** — a replicated instruction predicated onto one lane
  parity (half the redundancy silently gone);
* **cry-wolf**    — an unconditional detection report planted into an
  identity compile;
* **spin-forever** — an infinite loop appended to an identity compile.

For the bugs the *dynamic* differential oracle also catches, the
selftest cross-checks that the static verdict subsumes the dynamic one:
every planted miscompile the oracle flags must carry a static witness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..compiler.pass_manager import Pass
from ..compiler.passes.rmt_common import RmtOptions
from ..compiler.passes.rmt_intra import IntraGroupRmtPass
from ..compiler.pipeline import compile_kernel
from ..compiler.tv import TvReport, validate_compile
from ..fuzz.program import BufferSpec, FuzzProgram, Op
from ..ir.core import (
    Alu,
    Cmp,
    Const,
    If,
    ReportError,
    SpecialId,
    StoreGlobal,
    While,
)
from ..ir.types import DType


def probe_program() -> FuzzProgram:
    """``out0[gid] = in0[gid & 63] + gid`` — per-lane store values, so
    index permutations and replica drops cannot go unnoticed."""
    return FuzzProgram(
        name="tv_probe",
        global_size=64,
        local_size=16,
        buffers=[
            BufferSpec("in0", "u32", 64, role="in", init="random", seed=11),
            BufferSpec("out0", "u32", 64, role="out", init="zeros"),
        ],
        ops=[
            Op("special", result=1, op="global_id", imm=0),
            Op("const", result=2, dtype="u32", imm=63),
            Op("alu", result=3, dtype="u32", op="and", args=(1, 2)),
            Op("load", result=4, ref="in0", args=(3,)),
            Op("alu", result=5, dtype="u32", op="add", args=(4, 1)),
            Op("store", ref="out0", args=(1, 5)),
        ],
    )


# ---------------------------------------------------------------------------
# Planted passes (mirrors of the fuzz-oracle test fixtures)
# ---------------------------------------------------------------------------


class OffByOnePass(Pass):
    """Planted bug: xor the first global store's index with 1."""

    name = "planted-off-by-one"

    def run(self, kernel):
        self._patch(kernel.body, kernel)
        return kernel

    def _patch(self, body, kernel) -> bool:
        for i, stmt in enumerate(body):
            if isinstance(stmt, StoreGlobal):
                one = kernel.new_reg(DType.U32, hint="obo_c")
                bad = kernel.new_reg(DType.U32, hint="obo")
                body[i:i] = [Const(one, 1), Alu("xor", bad, stmt.index, one)]
                stmt.index = bad
                return True
            if isinstance(stmt, If):
                if (self._patch(stmt.then_body, kernel)
                        or self._patch(stmt.else_body, kernel)):
                    return True
            if isinstance(stmt, While):
                if self._patch(stmt.body, kernel):
                    return True
        return False


class SkipComparePass(Pass):
    """Planted bug: stock Intra-Group(+LDS), then delete the innermost
    output-comparison branch (the ``If`` guarding a report_error)."""

    name = "planted-skip-compare"

    def __init__(self):
        self.inner = IntraGroupRmtPass(RmtOptions(include_lds=True))

    def run(self, kernel):
        kernel = self.inner.run(kernel)
        assert self._strip(kernel.body), "no report_error branch to strip"
        return kernel

    def _strip(self, body) -> bool:
        for i, stmt in enumerate(body):
            if isinstance(stmt, If):
                if self._strip(stmt.then_body) or self._strip(stmt.else_body):
                    return True
                if any(isinstance(s, ReportError) for s in stmt.then_body):
                    del body[i]
                    return True
            elif isinstance(stmt, While):
                if self._strip(stmt.cond_block) or self._strip(stmt.body):
                    return True
        return False


class DropReplicaPass(Pass):
    """Planted bug: predicate the first top-level ALU add on lane
    parity — one replica silently stops computing it."""

    name = "planted-drop-replica"

    def run(self, kernel):
        for i, stmt in enumerate(kernel.body):
            if isinstance(stmt, Alu) and stmt.op == "add":
                gid = kernel.new_reg(DType.U32, hint="dr_gid")
                one = kernel.new_reg(DType.U32, hint="dr_one")
                par = kernel.new_reg(DType.U32, hint="dr_par")
                zero = kernel.new_reg(DType.U32, hint="dr_zero")
                p = kernel.new_reg(DType.PRED, hint="dr_p")
                pre = [SpecialId(gid, "global_id", 0), Const(one, 1),
                       Alu("and", par, gid, one), Const(zero, 0),
                       Cmp("eq", p, par, zero)]
                kernel.body[i:i + 1] = pre + [If(p, [stmt], [])]
                return kernel
        raise AssertionError("no top-level add to wrap")


class CryWolfPass(Pass):
    """Planted bug: unconditionally raise the detection flag."""

    name = "planted-cry-wolf"

    def run(self, kernel):
        kernel.body.append(ReportError(7))
        return kernel


class SpinForeverPass(Pass):
    """Planted bug: append a loop whose condition never goes false."""

    name = "planted-spin"

    def run(self, kernel):
        a = kernel.new_reg(DType.U32, hint="spin_a")
        b = kernel.new_reg(DType.U32, hint="spin_b")
        p = kernel.new_reg(DType.PRED, hint="spin_p")
        kernel.body.append(
            While([Const(a, 0), Const(b, 0), Cmp("eq", p, a, b)], p, []))
        return kernel


# ---------------------------------------------------------------------------
# The selftest
# ---------------------------------------------------------------------------


@dataclass
class PlantedCase:
    name: str
    variant: str
    expect_obligation: str           # must be 'failed' in the report
    rmt_pass: Optional[Pass] = None
    extra_passes: Tuple = ()
    dynamic_kinds: Tuple[str, ...] = ()  # oracle finding kinds to cross-check


def _cases() -> List[PlantedCase]:
    return [
        PlantedCase("off-by-one", "intra+lds", "effect-correspondence",
                    extra_passes=(OffByOnePass(),),
                    dynamic_kinds=("miscompare",)),
        PlantedCase("skip-compare", "intra+lds", "output-comparison",
                    rmt_pass=SkipComparePass()),
        PlantedCase("drop-replica", "intra+lds", "replica-completeness",
                    extra_passes=(DropReplicaPass(),),
                    dynamic_kinds=("false_detection", "miscompare", "crash")),
        PlantedCase("cry-wolf", "original", "effect-correspondence",
                    extra_passes=(CryWolfPass(),),
                    dynamic_kinds=("false_detection",)),
        PlantedCase("spin-forever", "original", "control-skeleton",
                    extra_passes=(SpinForeverPass(),)),
    ]


@dataclass
class SelftestResult:
    case: str
    rejected: bool                   # static validator produced a failure
    obligation_hit: bool             # ... on the expected obligation
    report: TvReport
    dynamic_caught: Optional[bool] = None   # None = not cross-checked
    escapes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.rejected and self.obligation_hit and not self.escapes

    def to_json(self) -> Dict:
        return {
            "case": self.case,
            "rejected": self.rejected,
            "obligation_hit": self.obligation_hit,
            "dynamic_caught": self.dynamic_caught,
            "escapes": list(self.escapes),
            "report": self.report.to_json(),
        }


def run_selftest(dynamic: bool = True) -> List[SelftestResult]:
    """Plant each bug, validate, and (optionally) cross-check the
    dynamic oracle: a dynamically-caught miscompile with no static
    witness is an *escape* — the acceptance criterion of the validator.
    """
    results: List[SelftestResult] = []
    for case in _cases():
        original = probe_program().build()
        compiled = compile_kernel(
            original,
            variant=case.variant,
            rmt_pass=case.rmt_pass,
            extra_passes=case.extra_passes,
            lint=False,          # isolate the validator from the lint gate
            validate=False,
            cache=False,         # the proof anchors to THIS build's regs
        )
        report = validate_compile(
            original, compiled.kernel, variant=case.variant,
            raise_on_failure=False)
        result = SelftestResult(
            case=case.name,
            rejected=bool(report.failures),
            obligation_hit=report.obligations.get(
                case.expect_obligation) == "failed",
            report=report,
        )
        if dynamic and case.dynamic_kinds:
            from ..fuzz.oracle import RunSpec, check_program

            oracle = check_program(
                probe_program(),
                runs=[RunSpec(case.variant, optimize=False,
                              rmt_pass=case.rmt_pass,
                              extra_passes=case.extra_passes, lint=False)])
            result.dynamic_caught = not oracle.ok
            if result.dynamic_caught and not result.rejected:
                result.escapes.append(
                    f"dynamic oracle caught {case.name} "
                    f"({', '.join(sorted({f.kind for f in oracle.errors}))}) "
                    "but the validator produced no witness")
        results.append(result)
    return results


def format_selftest(results: List[SelftestResult]) -> str:
    lines = []
    for r in results:
        verdict = "rejected" if r.rejected else "MISSED"
        hit = "" if r.obligation_hit else " (wrong obligation)"
        dyn = ""
        if r.dynamic_caught is not None:
            dyn = (", dynamic oracle agrees" if r.dynamic_caught
                   else ", dynamic oracle blind to it")
        lines.append(f"  {r.case}: {verdict}{hit}{dyn}")
        for esc in r.escapes:
            lines.append(f"    ESCAPE: {esc}")
        for w in r.report.failures[:2]:
            lines.append(f"    witness: {w}")
    good = sum(1 for r in results if r.ok)
    lines.append(f"selftest: {good}/{len(results)} planted bugs statically "
                 "rejected on the expected obligation")
    return "\n".join(lines)
