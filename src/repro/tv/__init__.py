"""Command-line front end for the translation validator.

``python -m repro.tv`` certifies every suite kernel under the RMT
variant × optimization-level matrix: each compile is checked against
the simulation relation of :mod:`repro.compiler.tv`, and the exit
status is non-zero unless **every** obligation of every compile is
proved — ``unproven`` counts as a certification failure here, even
though it does not reject the compile in the pipeline.

``--selftest`` instead plants the known bug passes (store off-by-one,
skipped comparison, dropped replica, cry-wolf, spin-forever) and checks
each is statically rejected with a witness on the expected obligation,
cross-checking against the dynamic differential oracle.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..compiler.pipeline import RMT_VARIANTS, compile_kernel
from ..compiler.tv import TvReport, validate_compile
from ..ir.verify import VerificationError
from ..kernels.suite import all_abbrevs, make_benchmark

#: The certification matrix defaults (the paper's headline variants).
DEFAULT_VARIANTS = ("original", "intra+lds", "intra-lds", "inter")
DEFAULT_OPT_LEVELS = (0, 1)


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tv",
        description="Statically certify RMT compiles against the "
                    "simulation relation.",
    )
    parser.add_argument(
        "--scale", choices=("small", "paper"), default="small",
        help="benchmark problem sizes (default: small)",
    )
    parser.add_argument(
        "--kernels", default=None,
        help="comma-separated benchmark abbreviations (default: all)",
    )
    parser.add_argument(
        "--variants", default=",".join(DEFAULT_VARIANTS),
        help=f"comma-separated RMT variants (default: "
             f"{','.join(DEFAULT_VARIANTS)}; known: {', '.join(RMT_VARIANTS)})",
    )
    parser.add_argument(
        "--opt", default=",".join(str(o) for o in DEFAULT_OPT_LEVELS),
        help="comma-separated optimization levels from {0,1} (default: 0,1)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON document instead of text",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only failures and the summary line",
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="run the planted-bug selftest instead of the kernel matrix",
    )
    parser.add_argument(
        "--no-dynamic", action="store_true",
        help="selftest: skip the dynamic-oracle cross-check",
    )
    return parser.parse_args(argv)


def _split(arg: Optional[str]) -> Optional[List[str]]:
    if arg is None:
        return None
    return [x.strip() for x in arg.split(",") if x.strip()]


def certify_matrix(
    abbrevs: Sequence[str],
    variants: Sequence[str],
    opt_levels: Sequence[int],
    scale: str = "small",
    on_row: Optional[Callable[[str, Dict], None]] = None,
) -> Tuple[List[Dict], Dict[str, int]]:
    """Certify the kernel × variant × opt matrix; return ``(rows, summary)``.

    The engine behind both ``python -m repro.tv`` and the serve daemon's
    ``certify`` job, so the two surfaces cannot drift: each row is one
    compile's :meth:`~repro.compiler.tv.TvReport.to_json` (plus its
    ``target`` name), or ``{"target", "ok": False, "error"}`` when the
    compile itself failed verification.  ``on_row`` observes rows as
    they are produced (the CLI prints them; the daemon streams them).
    Raises :class:`KeyError` for an unknown benchmark abbreviation.
    """
    rows: List[Dict] = []
    summary = {"total": 0, "certified": 0, "failed": 0, "unproven": 0,
               "compile_failures": 0}
    for abbrev in abbrevs:
        bench = make_benchmark(abbrev, scale=scale)
        for variant in variants:
            for opt in opt_levels:
                target = f"{abbrev}/{variant}@O{opt}"
                kernel = bench.build()
                try:
                    # cache=False: the proof anchors transformed values
                    # to THIS kernel's register objects, so the
                    # certifier must run the real transformation — a
                    # cached compile (from a structurally identical
                    # build) would be unprovable by construction.
                    compiled = compile_kernel(
                        kernel, variant, optimize=bool(opt),
                        lint=False, validate=False, cache=False,
                    )
                except VerificationError as exc:
                    summary["compile_failures"] += 1
                    row = {"target": target, "ok": False, "error": str(exc)}
                else:
                    report: TvReport = validate_compile(
                        kernel, compiled.kernel, variant=variant,
                        raise_on_failure=False)
                    row = report.to_json()
                    row["target"] = target
                    if report.ok:
                        summary["certified"] += 1
                    elif report.failures:
                        summary["failed"] += 1
                    else:
                        summary["unproven"] += 1
                rows.append(row)
                if on_row is not None:
                    on_row(target, row)
    summary["total"] = len(rows)
    return rows, summary


def _run_selftest(args: argparse.Namespace) -> int:
    from .selftest import format_selftest, run_selftest

    results = run_selftest(dynamic=not args.no_dynamic)
    if args.json:
        print(json.dumps({
            "selftest": [r.to_json() for r in results],
            "ok": all(r.ok for r in results),
        }, indent=2))
    else:
        print(format_selftest(results))
    return 0 if all(r.ok for r in results) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    if args.selftest:
        return _run_selftest(args)

    abbrevs = _split(args.kernels) or all_abbrevs()
    variants = _split(args.variants) or list(DEFAULT_VARIANTS)
    bad = [v for v in variants if v not in RMT_VARIANTS]
    if bad:
        print(f"unknown variant(s): {', '.join(bad)}", file=sys.stderr)
        return 2
    try:
        opt_levels = [int(o) for o in _split(args.opt) or []]
    except ValueError:
        opt_levels = []
    if not opt_levels or any(o not in (0, 1) for o in opt_levels):
        print(f"--opt must be a comma list from {{0,1}}, got {args.opt!r}",
              file=sys.stderr)
        return 2

    from ..compiler.tv.obligations import TvWitness

    def on_row(target: str, row: Dict) -> None:
        if "error" in row:
            print(f"{target}: compile failed: {row['error']}")
        elif row["ok"]:
            if not (args.quiet or args.json):
                print(f"{target}: certified "
                      f"({row['transformed']})")
        elif not args.json:
            print(f"{target}: NOT certified")
            for w in row["witnesses"]:
                print(f"  {TvWitness(**w)}")

    try:
        rows, summary = certify_matrix(
            abbrevs, variants, opt_levels, scale=args.scale, on_row=on_row)
    except KeyError as exc:
        print(f"unknown kernel: {exc}", file=sys.stderr)
        return 2

    ok = summary["certified"] == summary["total"]
    if args.json:
        print(json.dumps({
            "results": rows,
            "summary": summary,
            "ok": ok,
        }, indent=2))
    else:
        print(f"certified {summary['certified']}/{summary['total']} "
              f"compile(s): {summary['failed']} with failed obligations, "
              f"{summary['unproven']} unproven, "
              f"{summary['compile_failures']} compile failure(s)")
    return 0 if ok else 1
