"""Command-line front end for the translation validator.

``python -m repro.tv`` certifies every suite kernel under the RMT
variant × optimization-level matrix: each compile is checked against
the simulation relation of :mod:`repro.compiler.tv`, and the exit
status is non-zero unless **every** obligation of every compile is
proved — ``unproven`` counts as a certification failure here, even
though it does not reject the compile in the pipeline.

``--selftest`` instead plants the known bug passes (store off-by-one,
skipped comparison, dropped replica, cry-wolf, spin-forever) and checks
each is statically rejected with a witness on the expected obligation,
cross-checking against the dynamic differential oracle.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from ..compiler.pipeline import RMT_VARIANTS, compile_kernel
from ..compiler.tv import TvReport, validate_compile
from ..ir.verify import VerificationError
from ..kernels.suite import all_abbrevs, make_benchmark

#: The certification matrix defaults (the paper's headline variants).
DEFAULT_VARIANTS = ("original", "intra+lds", "intra-lds", "inter")
DEFAULT_OPT_LEVELS = (0, 1)


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tv",
        description="Statically certify RMT compiles against the "
                    "simulation relation.",
    )
    parser.add_argument(
        "--scale", choices=("small", "paper"), default="small",
        help="benchmark problem sizes (default: small)",
    )
    parser.add_argument(
        "--kernels", default=None,
        help="comma-separated benchmark abbreviations (default: all)",
    )
    parser.add_argument(
        "--variants", default=",".join(DEFAULT_VARIANTS),
        help=f"comma-separated RMT variants (default: "
             f"{','.join(DEFAULT_VARIANTS)}; known: {', '.join(RMT_VARIANTS)})",
    )
    parser.add_argument(
        "--opt", default=",".join(str(o) for o in DEFAULT_OPT_LEVELS),
        help="comma-separated optimization levels from {0,1} (default: 0,1)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON document instead of text",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only failures and the summary line",
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="run the planted-bug selftest instead of the kernel matrix",
    )
    parser.add_argument(
        "--no-dynamic", action="store_true",
        help="selftest: skip the dynamic-oracle cross-check",
    )
    return parser.parse_args(argv)


def _split(arg: Optional[str]) -> Optional[List[str]]:
    if arg is None:
        return None
    return [x.strip() for x in arg.split(",") if x.strip()]


def _run_selftest(args: argparse.Namespace) -> int:
    from .selftest import format_selftest, run_selftest

    results = run_selftest(dynamic=not args.no_dynamic)
    if args.json:
        print(json.dumps({
            "selftest": [r.to_json() for r in results],
            "ok": all(r.ok for r in results),
        }, indent=2))
    else:
        print(format_selftest(results))
    return 0 if all(r.ok for r in results) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    if args.selftest:
        return _run_selftest(args)

    abbrevs = _split(args.kernels) or all_abbrevs()
    variants = _split(args.variants) or list(DEFAULT_VARIANTS)
    bad = [v for v in variants if v not in RMT_VARIANTS]
    if bad:
        print(f"unknown variant(s): {', '.join(bad)}", file=sys.stderr)
        return 2
    try:
        opt_levels = [int(o) for o in _split(args.opt) or []]
    except ValueError:
        opt_levels = []
    if not opt_levels or any(o not in (0, 1) for o in opt_levels):
        print(f"--opt must be a comma list from {{0,1}}, got {args.opt!r}",
              file=sys.stderr)
        return 2

    rows: List[Dict] = []
    certified = failed = unproven = crashed = 0
    for abbrev in abbrevs:
        try:
            bench = make_benchmark(abbrev, scale=args.scale)
        except KeyError as exc:
            print(f"unknown kernel {abbrev!r}: {exc}", file=sys.stderr)
            return 2
        for variant in variants:
            for opt in opt_levels:
                target = f"{abbrev}/{variant}@O{opt}"
                kernel = bench.build()
                try:
                    # cache=False: the proof anchors transformed values
                    # to THIS kernel's register objects, so the
                    # certifier must run the real transformation — a
                    # cached compile (from a structurally identical
                    # build) would be unprovable by construction.
                    compiled = compile_kernel(
                        kernel, variant, optimize=bool(opt),
                        lint=False, validate=False, cache=False,
                    )
                except VerificationError as exc:
                    crashed += 1
                    rows.append({"target": target, "ok": False,
                                 "error": str(exc)})
                    print(f"{target}: compile failed: {exc}")
                    continue
                report: TvReport = validate_compile(
                    kernel, compiled.kernel, variant=variant,
                    raise_on_failure=False)
                row = report.to_json()
                row["target"] = target
                rows.append(row)
                if report.ok:
                    certified += 1
                    if not (args.quiet or args.json):
                        print(f"{target}: certified "
                              f"({report.transformed})")
                else:
                    if report.failures:
                        failed += 1
                    else:
                        unproven += 1
                    if not args.json:
                        print(f"{target}: NOT certified")
                        for w in report.witnesses:
                            print(f"  {w}")

    total = len(rows)
    ok = certified == total
    if args.json:
        print(json.dumps({
            "results": rows,
            "summary": {
                "total": total, "certified": certified, "failed": failed,
                "unproven": unproven, "compile_failures": crashed,
            },
            "ok": ok,
        }, indent=2))
    else:
        print(f"certified {certified}/{total} compile(s): {failed} with "
              f"failed obligations, {unproven} unproven, {crashed} compile "
              "failure(s)")
    return 0 if ok else 1
