"""Entry point: ``python -m repro.campaign``.

Thin shim over :mod:`repro.orchestrator.cli` so sharded fault-injection
campaigns are launchable without knowing the package layout.
"""

from .orchestrator.cli import build_parser, main

__all__ = ["build_parser", "main"]

if __name__ == "__main__":
    raise SystemExit(main())
