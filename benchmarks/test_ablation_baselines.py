"""Ablations: naive duplication baseline and occupancy sensitivity.

These go beyond the paper's figures to check the *mechanisms* its
analysis relies on (Sections 3.4 and 6.4).
"""

from conftest import emit
from repro.eval.ablations import naive_duplication_data, occupancy_sweep_data


def test_ablation_naive_duplication(benchmark, harness, is_paper_scale):
    kernels = ["FWT", "BlkSch", "SC"] if is_paper_scale else ["FWT", "BlkSch"]
    fig = benchmark.pedantic(
        naive_duplication_data, args=(harness, kernels), rounds=1, iterations=1
    )
    emit(fig)

    for row in fig.rows:
        # Re-running the whole launch costs ~2x everywhere.
        assert 1.7 < row["dual_kernel"] < 2.4, row

    if is_paper_scale:
        # The paper's motivation: on memory-bound kernels, Intra-Group RMT
        # beats naive duplication by hiding the redundancy.
        fwt = fig.row_for("kernel", "FWT")
        assert fwt["rmt_wins"], "Intra-Group RMT should beat naive duplication on FWT"


def test_ablation_occupancy_latency_hiding(benchmark, harness, is_paper_scale):
    # BlkSch is compute/latency-limited per CU, so occupancy starvation
    # shows directly (a DRAM-saturated kernel like FWT would not care —
    # its bottleneck is off-chip).
    abbrev = "BlkSch"
    caps = [1, 2, 4, 8] if is_paper_scale else [1, 2, 4]
    fig = benchmark.pedantic(
        occupancy_sweep_data, args=(harness.scale, abbrev, caps),
        rounds=1, iterations=1,
    )
    emit(fig)

    ratios = fig.column_values("vs_unlimited")
    # Starving the CU of resident groups must hurt, monotonically (within
    # a small tolerance for scheduling noise).  The small-scale suite has
    # too few groups per CU for the cap to bite, so the starvation check
    # runs at paper scale only.
    if is_paper_scale:
        assert ratios[0] > 1.15, "one group per CU should expose latency"
    for earlier, later in zip(ratios, ratios[1:]):
        assert later <= earlier * 1.05
