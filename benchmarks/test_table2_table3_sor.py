"""Tables 2 and 3: structures protected by each RMT flavor."""

from conftest import emit
from repro.eval.experiments import table2_data, table3_data
from repro.eval.paper_data import (
    TABLE2_INTRA_MINUS,
    TABLE2_INTRA_PLUS,
    TABLE3_INTER,
)


def test_table2_sor_intra(benchmark):
    fig = benchmark.pedantic(table2_data, rounds=1, iterations=1)
    emit(fig)
    plus = fig.row_for("flavor", "intra+lds")
    minus = fig.row_for("flavor", "intra-lds")
    assert {s for s, v in plus.items() if v is True} == set(TABLE2_INTRA_PLUS)
    assert {s for s, v in minus.items() if v is True} == set(TABLE2_INTRA_MINUS)


def test_table3_sor_inter(benchmark):
    fig = benchmark.pedantic(table3_data, rounds=1, iterations=1)
    emit(fig)
    inter = fig.row_for("flavor", "inter")
    assert {s for s, v in inter.items() if v is True} == set(TABLE3_INTER)
    assert inter["R/W L1$"] is False
