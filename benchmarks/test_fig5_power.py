"""Figure 5: average/peak power of the long-running kernels."""

from conftest import emit
from repro.eval.experiments import fig5_data
from repro.eval.paper_data import POWER_BAND_W, POWER_MAX_INCREASE


def test_fig5_power(benchmark, harness, is_paper_scale):
    fig = benchmark.pedantic(fig5_data, args=(harness,), rounds=1, iterations=1)
    emit(fig)

    assert len(fig.rows) == 9
    for row in fig.rows:
        assert row["peak_w"] >= row["average_w"] * 0.99

    if not is_paper_scale:
        return

    lo, hi = POWER_BAND_W
    for row in fig.rows:
        assert lo - 5 <= row["average_w"] <= hi + 5, (
            f"{row['kernel']}/{row['variant']}: {row['average_w']:.1f} W "
            f"outside the paper's band"
        )
        if row["variant"] != "Original":
            # Paper: RMT adds <2% average power; allow a little model slack.
            assert row["vs_original"] < 0.07, (
                f"{row['kernel']}/{row['variant']}: average power rose "
                f"{row['vs_original']:.1%}"
            )
