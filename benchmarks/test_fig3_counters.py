"""Figure 3: VALUBusy / MemUnitBusy / WriteUnitStalled per kernel/variant."""

from conftest import emit
from repro.eval.experiments import fig2_data, fig3_data
from repro.eval.paper_data import intra_band


def test_fig3_counters(benchmark, harness, is_paper_scale):
    fig = benchmark.pedantic(fig3_data, args=(harness,), rounds=1, iterations=1)
    emit(fig)

    assert len(fig.rows) == 48
    for row in fig.rows:
        assert 0.0 <= row["VALUBusy"] <= 1.0
        assert 0.0 <= row["MemUnitBusy"] <= 1.0
        assert 0.0 <= row["WriteUnitStalled"] <= 1.0

    if not is_paper_scale:
        return

    # The paper's correlation: low-overhead kernels are memory-bound
    # (memory time dominates ALU time for the original kernel).
    slowdowns = {r["kernel"]: r for r in fig2_data(harness).rows}
    originals = [r for r in fig.rows if r["variant"] == "Original"]
    mem_bound_low = 0
    low_total = 0
    for row in originals:
        ab = row["kernel"]
        best = min(slowdowns[ab]["intra+lds"], slowdowns[ab]["intra-lds"])
        mem_time = row["MemUnitBusy"] + row["WriteUnitStalled"]
        if intra_band(best) == "low":
            low_total += 1
            if mem_time > row["VALUBusy"]:
                mem_bound_low += 1
    assert low_total > 0
    # NB can land in the low band through under-utilization rather
    # than memory-boundedness, as the paper notes for Inter-Group.
    assert mem_bound_low >= low_total - 2, (
        "low-overhead kernels should be memory-bound in their counters"
    )
