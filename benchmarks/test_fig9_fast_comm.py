"""Figure 9: Intra-Group RMT with FAST register-level communication."""

from conftest import emit
from repro.eval.experiments import fig9_data
from repro.eval.paper_data import FAST_IMPROVES


def test_fig9_fast_comm(benchmark, harness, is_paper_scale):
    fig = benchmark.pedantic(fig9_data, args=(harness,), rounds=1, iterations=1)
    emit(fig)

    assert len(fig.rows) == 16
    if not is_paper_scale:
        return

    rows = {r["kernel"]: r for r in fig.rows}

    # Paper: BO, DWT, PS, QRS see considerable FAST improvements in at
    # least one flavor; require a measurable gain for most of them.
    improved = 0
    for ab in FAST_IMPROVES:
        r = rows[ab]
        gain_plus = r["intra+lds"] - r["intra+lds FAST"]
        gain_minus = r["intra-lds"] - r["intra-lds FAST"]
        if max(gain_plus, gain_minus) > 0.03:
            improved += 1
    assert improved >= 3, (
        f"FAST should help most of {FAST_IMPROVES}; helped {improved}"
    )

    # FAST never catastrophically regresses any kernel (the paper's worst
    # cases, FW and NB, lose only slightly to packing overhead).
    for r in fig.rows:
        assert r["intra+lds FAST"] < r["intra+lds"] * 1.25
        assert r["intra-lds FAST"] < r["intra-lds"] * 1.25
