"""Figure 2: Intra-Group RMT slowdowns across the 16-kernel suite."""

from conftest import emit
from repro.eval.experiments import fig2_data
from repro.eval.paper_data import FIGURE_ORDER, INTRA_CATEGORY


def test_fig2_intra_overhead(benchmark, harness, is_paper_scale):
    fig = benchmark.pedantic(fig2_data, args=(harness,), rounds=1, iterations=1)
    emit(fig)

    assert len(fig.rows) == len(FIGURE_ORDER)
    if not is_paper_scale:
        return

    low = [r for r in fig.rows if INTRA_CATEGORY[r["kernel"]] == "low"]
    high = [r for r in fig.rows if INTRA_CATEGORY[r["kernel"]] == "high"]

    # The paper's headline bimodality: the memory-bound group's best-flavor
    # overhead sits clearly below the compute/LDS-bound group's.
    avg_low = sum(min(r["intra+lds"], r["intra-lds"]) for r in low) / len(low)
    avg_high = sum(min(r["intra+lds"], r["intra-lds"]) for r in high) / len(high)
    assert avg_low < 1.55, f"memory-bound kernels should mostly hide RMT: {avg_low:.2f}"
    assert avg_high > 1.6, f"compute-bound kernels should pay ~2x: {avg_high:.2f}"

    # Individual band agreement for at least 12 of 16 kernels.
    matches = sum(bool(r["band_match"]) for r in fig.rows)
    # SC/SF keep a ~2x overhead here (our issue-bandwidth model is
    # harsher on their 25-/8-tap load streams than the HD 7790 was)
    # and NB lands just under the band split; see EXPERIMENTS.md.
    assert matches >= 11, f"only {matches}/16 kernels land in the paper's band"
