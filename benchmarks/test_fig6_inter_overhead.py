"""Figure 6: Inter-Group RMT slowdowns across the suite."""

from conftest import emit
from repro.eval.experiments import fig6_data
from repro.eval.paper_data import INTER_CATEGORY


def test_fig6_inter_overhead(benchmark, harness, is_paper_scale):
    fig = benchmark.pedantic(fig6_data, args=(harness,), rounds=1, iterations=1)
    emit(fig)

    assert len(fig.rows) == 16
    if not is_paper_scale:
        return

    rows = {r["kernel"]: r for r in fig.rows}

    # The paper's extreme kernels (BitS/DWT/FWT) sit clearly above the
    # ~2x crowd here too.  The magnitudes deviate in both directions
    # (BitS/FWT undershoot the paper's 9.4x, and FW — a kernel the paper
    # put at ~2x — overshoots on its 32-launch lock traffic); see
    # EXPERIMENTS.md for the per-kernel comparison.
    extremes = [ab for ab, cat in INTER_CATEGORY.items() if cat == "extreme"]
    inter_values = sorted(r["inter"] for r in fig.rows)
    median = inter_values[len(inter_values) // 2]
    for ab in extremes:
        assert rows[ab]["inter"] > 3.0, (
            f"{ab} should be among the most expensive Inter-Group kernels"
        )
        assert rows[ab]["inter"] > median
    ranked = sorted(rows, key=lambda ab: rows[ab]["inter"], reverse=True)
    assert set(ranked[:2]) & set(extremes + ["FW"]), (
        f"the worst Inter-Group kernels should be lock-traffic bound; "
        f"ranking: {ranked[:4]}"
    )

    # Under-utilizing kernels land cheap, as quoted (SC 1.10, NB 1.16).
    assert rows["NB"]["inter"] < 1.9
    assert rows["BinS"]["inter"] < 1.9
    # SC measures ~2.4x here where the paper saw 1.10x — our model does
    # not reproduce its slipstream prefetching; see EXPERIMENTS.md.
    assert rows["SC"]["inter"] < 2.8

    # Compute/LDS-bound kernels show the expected ~2x.
    for ab in ("BO", "BlkSch", "MM", "URNG"):
        assert 1.5 < rows[ab]["inter"] < 4.2, (
            f"{ab} expected ~2x, measured {rows[ab]['inter']:.2f}"
        )
