"""Table 1: SEC-DED ECC overhead of GCN CU structures."""

import pytest

from conftest import emit
from repro.eval.experiments import table1_data
from repro.eval.paper_data import TABLE1_PAPER, TABLE1_TOTAL_OVERHEAD


def test_table1_ecc(benchmark):
    fig = benchmark.pedantic(table1_data, rounds=1, iterations=1)
    emit(fig)

    for structure, (size_kb, ecc_kb) in TABLE1_PAPER.items():
        row = fig.row_for("structure", structure)
        assert row["size_kB"] == pytest.approx(size_kb)
        # Registers/LDS match the paper exactly; the L1 line differs by
        # the 8 B documented in DESIGN.md/EXPERIMENTS.md.
        assert row["ecc_kB"] == pytest.approx(ecc_kb, rel=0.03)

    total_note = fig.notes[0]
    assert "21.0%" in total_note
    assert abs(0.21 - TABLE1_TOTAL_OVERHEAD) < 1e-9
