"""Figure 8: swizzle cross-lane exchange semantics."""

from conftest import emit
from repro.eval.experiments import fig8_data


def test_fig8_swizzle(benchmark):
    fig = benchmark.pedantic(fig8_data, rounds=1, iterations=1)
    emit(fig)
    # Figure 8's exact picture: [a b c d ...] -> [b b d d ...].
    for row in fig.rows:
        lane = int(row["lane"][1:])
        assert row["after"] == (lane | 1)
        if lane % 2 == 1:
            assert row["after"] == row["before"]
