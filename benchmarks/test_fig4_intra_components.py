"""Figure 4: component breakdown of Intra-Group RMT overhead."""

from conftest import emit
from repro.eval.experiments import fig4_data
from repro.eval.paper_data import COMM_DOMINATED_INTRA


def test_fig4_intra_components(benchmark, harness, is_paper_scale):
    fig = benchmark.pedantic(fig4_data, args=(harness,), rounds=1, iterations=1)
    emit(fig)

    assert len(fig.rows) == 32  # 16 kernels x 2 flavors
    for row in fig.rows:
        total = row["doubling"] + row["redundant_compute"] + row["communication"]
        assert abs(total - row["total_overhead"]) < 1e-9

    if not is_paper_scale:
        return

    # Paper: for BO/DWT/PS/R communication is a major share of at least
    # one flavor's overhead.
    comm_heavy = 0
    for ab in COMM_DOMINATED_INTRA:
        rows = [r for r in fig.rows if r["kernel"] == ab]
        for r in rows:
            if r["total_overhead"] > 0.15 and (
                r["communication"] >= 0.3 * r["total_overhead"]
            ):
                comm_heavy += 1
                break
    assert comm_heavy >= 2, (
        "communication should dominate for several of the paper's "
        f"comm-bound kernels; saw {comm_heavy}"
    )
