"""Shared fixtures for the figure-regeneration benchmarks.

Scale defaults to the paper-scale workloads; set ``REPRO_SCALE=small``
for a quick pass.  Results are cached in ``.repro_cache.json`` at the
repository root (override with ``REPRO_CACHE``; delete the file to force
fresh simulation).

Set ``REPRO_WORKERS=N`` (N > 1) to pre-warm the cache by fanning the
standard kernels × variants grid out across N worker processes before
the first figure test runs; the figure tests then hit the cache instead
of simulating serially.
"""

import os
from pathlib import Path

import pytest

from repro.eval.harness import Harness

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _default_cache() -> str:
    return os.environ.get("REPRO_CACHE", str(_REPO_ROOT / ".repro_cache.json"))


@pytest.fixture(scope="session")
def harness() -> Harness:
    scale = os.environ.get("REPRO_SCALE", "paper")
    h = Harness(scale=scale, cache_path=_default_cache())
    if h.workers > 1:
        # Parallel pre-warm of the overhead-figure grid (run_grid skips
        # anything already cached, so this is cheap on warm caches).
        h.run_grid()
    return h


@pytest.fixture(scope="session")
def is_paper_scale(harness) -> bool:
    return harness.scale == "paper"


def emit(fig) -> None:
    """Print a regenerated figure into the benchmark output."""
    from repro.eval.render import format_figure

    print()
    print(format_figure(fig))
