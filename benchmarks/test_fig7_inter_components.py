"""Figure 7: component breakdown of Inter-Group RMT overhead."""

from conftest import emit
from repro.eval.experiments import fig7_data
from repro.eval.paper_data import INTER_CATEGORY


def test_fig7_inter_components(benchmark, harness, is_paper_scale):
    fig = benchmark.pedantic(fig7_data, args=(harness,), rounds=1, iterations=1)
    emit(fig)

    assert len(fig.rows) == 16
    for row in fig.rows:
        total = row["doubling"] + row["redundant_compute"] + row["communication"]
        assert abs(total - row["total_overhead"]) < 1e-9

    if not is_paper_scale:
        return

    rows = {r["kernel"]: r for r in fig.rows}

    # Paper: for the extreme (>3x) kernels, communication is the large
    # contributing factor...
    for ab in [k for k, cat in INTER_CATEGORY.items() if cat == "extreme"]:
        r = rows[ab]
        assert r["communication"] >= 0.5 * r["total_overhead"], (
            f"{ab}: communication should dominate its Inter-Group overhead"
        )

    # ...while for most kernels it is NOT the main bottleneck.
    non_extreme = [r for r in fig.rows
                   if INTER_CATEGORY[r["kernel"]] != "extreme"]
    comm_minor = sum(
        1 for r in non_extreme
        if r["communication"] <= max(r["redundant_compute"], 0.35)
    )
    assert comm_minor >= len(non_extreme) - 3
